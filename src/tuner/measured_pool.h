// Pre-measured configuration pools.
//
// Following §7.1, a sample pool C_pool of N joint configurations is drawn
// uniformly from the (constrained) configuration space and each entry is
// measured once; all auto-tuning algorithms select their training samples
// from this pool and the same measurements serve as the test set. The
// per-component pools (500 random solo runs each) provide component-model
// training data and the "historical measurements" D_hist of §7.5.
#pragma once

#include <cstdint>
#include <vector>

#include "config/config_space.h"
#include "core/backoff.h"
#include "ml/gbt.h"
#include "sim/fault_model.h"
#include "sim/workflow.h"
#include "sim/workloads.h"
#include "tuner/objective.h"

namespace ceal::telemetry {
class Telemetry;
}

namespace ceal::measure {
class MeasureBackend;
}

namespace ceal::tuner {

class CheckpointSession;

struct MeasuredPool {
  std::vector<config::Configuration> configs;
  std::vector<double> exec_s;   ///< one noisy measurement per config
  std::vector<double> comp_ch;
  /// Noise-free expected values, used only by the evaluation harness to
  /// report the actual performance of recommended configurations.
  std::vector<double> true_exec_s;
  std::vector<double> true_comp_ch;

  std::size_t size() const { return configs.size(); }

  const std::vector<double>& measured(Objective objective) const {
    return objective == Objective::kExecTime ? exec_s : comp_ch;
  }

  const std::vector<double>& truth(Objective objective) const {
    return objective == Objective::kExecTime ? true_exec_s : true_comp_ch;
  }

  /// Index of the best (smallest) measured value for the objective.
  std::size_t best_index(Objective objective) const;

  /// Index of the best noise-free value for the objective.
  std::size_t best_truth_index(Objective objective) const;
};

/// Solo measurements of one component application.
struct ComponentSamples {
  std::vector<config::Configuration> configs;  ///< component-local configs
  std::vector<double> exec_s;
  std::vector<double> comp_ch;

  std::size_t size() const { return configs.size(); }

  const std::vector<double>& measured(Objective objective) const {
    return objective == Objective::kExecTime ? exec_s : comp_ch;
  }
};

/// Draws `n` random valid joint configurations and measures each once.
MeasuredPool measure_pool(const sim::InSituWorkflow& workflow, std::size_t n,
                          std::uint64_t seed);

/// Draws and measures `n_per_component` random solo runs per component.
/// Unconfigurable components get a single sample (their space is trivial).
std::vector<ComponentSamples> measure_components(
    const sim::InSituWorkflow& workflow, std::size_t n_per_component,
    std::uint64_t seed);

/// How the collector turns a measurement request into run attempts.
/// The default policy (no faults, one attempt) reproduces the paper's
/// clean collector exactly — same budget accounting, same rng draws.
struct MeasurementPolicy {
  /// Fault injection applied to every run attempt (disabled by default).
  sim::FaultModel faults;
  /// Attempts per measurement request before the entry is recorded with
  /// its failure status. Must be >= 1.
  std::size_t max_attempts = 1;
  /// When true every retry charges one budget unit like a fresh run;
  /// when false only the first attempt is charged (e.g. the facility
  /// refunds faulted jobs). Retries never over-spend: if the budget
  /// cannot cover a re-charge, retrying stops and the entry keeps its
  /// failure status.
  bool charge_retries = true;
  /// Delay schedule between retry attempts (core/backoff.h). Delays are
  /// *virtual*: the collector draws them from a deterministic
  /// per-request stream and accounts them under the
  /// `timing.measure.backoff_s` histogram without sleeping — the
  /// simulated facility requeues the job, the tuning session does not
  /// wait. Never changes which attempts run, what they cost, or any
  /// result byte.
  BackoffPolicy retry_backoff;
};

/// Everything one tuning experiment needs, bundled.
struct TuningProblem {
  const sim::Workload* workload = nullptr;
  Objective objective = Objective::kExecTime;
  const MeasuredPool* pool = nullptr;
  /// Per-component solo measurements (same order as workflow components).
  const std::vector<ComponentSamples>* component_samples = nullptr;
  /// When true, component samples are treated as historical data D_hist
  /// and cost nothing; otherwise algorithms that use them must charge
  /// their budget (CEAL's m_R).
  bool components_are_history = false;
  /// Fault/retry behaviour of workflow measurements (defaults to the
  /// clean collector of §2.2).
  MeasurementPolicy measurement;
  /// Optional observability hook (core/telemetry.h): when set, the
  /// collector and every tuner record counters/spans and emit structured
  /// trace events into it. Null (the default) disables all
  /// instrumentation at the cost of one pointer branch per site; the
  /// tuning session's results are identical either way. Not owned; must
  /// outlive the session. The registry is safe under concurrent writers;
  /// for parallel replications tuner::evaluate gives each replication a
  /// child instance and merges them in replication order, so trace event
  /// order stays a deterministic function of the seed (core/telemetry.h).
  telemetry::Telemetry* telemetry = nullptr;
  /// Optional crash-safety hook (tuner/checkpoint.h): when set, the
  /// collector journals every measurement outcome and the tuners journal
  /// their decision points, and a resumed session replays the journal to
  /// reconstruct mid-session state. Null (the default) disables
  /// checkpointing at the cost of one pointer branch per site; results
  /// are bitwise identical either way. Not owned; must outlive the
  /// session. Normally set through AutoTuner's resumable tune overload
  /// rather than by hand.
  CheckpointSession* checkpoint = nullptr;
  /// Optional measurement execution backend (measure/backend.h): where
  /// the raw run data of each measurement comes from. Null (the
  /// default) reads the pool rows inline — the paper's collector.
  /// A backend must return the pool rows bitwise (backends are dispatch
  /// strategies, not data sources), so sessions are identical under any
  /// backend; the subprocess fan-out plane (measure/subprocess.h) adds
  /// fault tolerance and parallelism behind this pointer. Not owned;
  /// must outlive the session.
  measure::MeasureBackend* measure = nullptr;
  /// Boosted-tree parameters for every surrogate the tuners train (the
  /// high-fidelity model and the per-component models). The default is
  /// the exact trainer the reproduction results are pinned to; large
  /// pools opt into the quantized trainer and the compiled predictor
  /// here (`ceal_tune --gbt-backend quantized --compiled-predictor`).
  ml::GbtParams surrogate_gbt = ml::GradientBoostedTrees::surrogate_defaults();
  /// When > 0, pool scoring streams featurization in blocks of this
  /// many rows (tuner/pool_scorer.h) instead of caching the whole
  /// pool's feature matrices — bounded memory for million-entry pools,
  /// bitwise-identical scores. 0 (the default) keeps the cached path.
  std::size_t pool_chunk_rows = 0;
};

}  // namespace ceal::tuner
