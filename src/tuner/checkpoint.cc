#include "tuner/checkpoint.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/error.h"
#include "core/telemetry.h"
#include "tuner/autotuner.h"
#include "tuner/measured_pool.h"

namespace ceal::tuner {

namespace {

// Doubles are journaled as C99 hex-float strings ("%a"): exact bitwise
// round-trip through text, matching the strict hex-float policy of
// ml/serialize.cc. Unsigned 64-bit words (rng state, fingerprints) are
// "0x..." hex strings — JSON numbers only carry 53 exact bits.

json::Value hex_double(double v) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%a", v);
  return json::Value::string(buffer);
}

double parse_hex_double(const json::Value& v, const char* what) {
  const std::string& text = v.as_string();
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw CheckpointError(std::string("malformed hex float in journal ") +
                          what + ": '" + text + "'");
  }
  return parsed;
}

json::Value hex_u64(std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "0x%llx",
                static_cast<unsigned long long>(v));
  return json::Value::string(buffer);
}

std::uint64_t parse_hex_u64(const json::Value& v, const char* what) {
  const std::string& text = v.as_string();
  if (text.size() < 3 || text[0] != '0' || text[1] != 'x') {
    throw CheckpointError(std::string("malformed hex word in journal ") +
                          what + ": '" + text + "'");
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 16);
  if (*end != '\0') {
    throw CheckpointError(std::string("malformed hex word in journal ") +
                          what + ": '" + text + "'");
  }
  return static_cast<std::uint64_t>(parsed);
}

std::array<std::uint64_t, 4> parse_rng_state(const json::Value& v,
                                             const char* what) {
  if (!v.is_array() || v.size() != 4) {
    throw CheckpointError(std::string("journal ") + what +
                          " is not a 4-word rng state");
  }
  std::array<std::uint64_t, 4> state{};
  for (std::size_t i = 0; i < 4; ++i) {
    state[i] = parse_hex_u64(v.at(i), what);
  }
  return state;
}

sim::RunStatus parse_run_status(const json::Value& v) {
  const std::string& name = v.as_string();
  if (name == "ok") return sim::RunStatus::kOk;
  if (name == "failed") return sim::RunStatus::kFailed;
  if (name == "censored") return sim::RunStatus::kCensored;
  throw CheckpointError("unknown run status in journal: '" + name + "'");
}

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a_double(std::uint64_t hash, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return fnv1a(hash, bits);
}

const std::string& record_kind(const json::Value& record) {
  const json::Value* kind = record.find("kind");
  if (kind == nullptr) {
    throw CheckpointError("journal record is missing its 'kind' member");
  }
  return kind->as_string();
}

json::Value header_json(const CheckpointHeader& header) {
  json::Value out = json::Value::object();
  out.set("kind", json::Value::string("header"));
  out.set("version", json::Value::number(kCheckpointVersion));
  out.set("algorithm", json::Value::string(header.algorithm));
  out.set("workflow", json::Value::string(header.workflow));
  out.set("objective", json::Value::string(header.objective));
  out.set("budget", json::Value::number(
                        static_cast<std::uint64_t>(header.budget_runs)));
  out.set("history", json::Value::boolean(header.history));
  out.set("pool_size", json::Value::number(
                           static_cast<std::uint64_t>(header.pool_size)));
  out.set("pool_fingerprint", hex_u64(header.pool_fingerprint));
  out.set("fail_prob", hex_double(header.fail_prob));
  out.set("outlier_prob", hex_double(header.outlier_prob));
  out.set("outlier_tail", hex_double(header.outlier_tail));
  out.set("deadline_s", hex_double(header.deadline_s));
  out.set("max_attempts", json::Value::number(static_cast<std::uint64_t>(
                              header.max_attempts)));
  out.set("charge_retries", json::Value::boolean(header.charge_retries));
  out.set("rng", rng_state_to_json(header.rng_state));
  return out;
}

json::Value measure_json(const MeasureRecord& record) {
  json::Value out = json::Value::object();
  out.set("kind", json::Value::string("measure"));
  out.set("pool_index", json::Value::number(
                            static_cast<std::uint64_t>(record.pool_index)));
  out.set("status", json::Value::string(sim::run_status_name(record.status)));
  out.set("value", hex_double(record.value));
  out.set("attempts", json::Value::number(
                          static_cast<std::uint64_t>(record.attempts)));
  out.set("budget_used", json::Value::number(static_cast<std::uint64_t>(
                             record.budget_used)));
  out.set("cost_exec_s", hex_double(record.cost_exec_s));
  out.set("cost_comp_ch", hex_double(record.cost_comp_ch));
  out.set("fault_rng", rng_state_to_json(record.fault_rng_state));
  return out;
}

MeasureRecord parse_measure(const json::Value& v) {
  MeasureRecord record;
  record.pool_index =
      static_cast<std::size_t>(v.at("pool_index").as_int());
  record.status = parse_run_status(v.at("status"));
  record.value = parse_hex_double(v.at("value"), "measure value");
  record.attempts = static_cast<std::size_t>(v.at("attempts").as_int());
  record.budget_used =
      static_cast<std::size_t>(v.at("budget_used").as_int());
  record.cost_exec_s =
      parse_hex_double(v.at("cost_exec_s"), "measure cost_exec_s");
  record.cost_comp_ch =
      parse_hex_double(v.at("cost_comp_ch"), "measure cost_comp_ch");
  record.fault_rng_state = parse_rng_state(v.at("fault_rng"), "fault_rng");
  return record;
}

bool file_nonempty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in && in.peek() != std::ifstream::traits_type::eof();
}

}  // namespace

json::Value rng_state_to_json(const std::array<std::uint64_t, 4>& state) {
  json::Value out = json::Value::array();
  for (const std::uint64_t word : state) out.push(hex_u64(word));
  return out;
}

std::uint64_t pool_fingerprint(const MeasuredPool& pool) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  hash = fnv1a(hash, pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (const int v : pool.configs[i]) {
      hash = fnv1a(hash, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(v)));
    }
    hash = fnv1a_double(hash, pool.exec_s[i]);
    hash = fnv1a_double(hash, pool.comp_ch[i]);
  }
  return hash;
}

CheckpointHeader make_checkpoint_header(const TuningProblem& problem,
                                        const AutoTuner& algorithm,
                                        std::size_t budget_runs,
                                        const ceal::Rng& rng) {
  CEAL_EXPECT(problem.workload != nullptr && problem.pool != nullptr);
  CheckpointHeader header;
  header.algorithm = algorithm.name();
  header.workflow = problem.workload->workflow.name();
  header.objective = objective_name(problem.objective);
  header.budget_runs = budget_runs;
  header.history = problem.components_are_history;
  header.pool_size = problem.pool->size();
  header.pool_fingerprint = pool_fingerprint(*problem.pool);
  header.fail_prob = problem.measurement.faults.fail_prob;
  header.outlier_prob = problem.measurement.faults.outlier_prob;
  header.outlier_tail = problem.measurement.faults.outlier_tail;
  header.deadline_s = problem.measurement.faults.deadline_s;
  header.max_attempts = problem.measurement.max_attempts;
  header.charge_retries = problem.measurement.charge_retries;
  header.rng_state = rng.state();
  return header;
}

CheckpointSession::CheckpointSession(std::string journal_path, Mode mode)
    : path_(std::move(journal_path)) {
  if (mode == Mode::kStart) {
    if (file_nonempty(path_)) {
      throw CheckpointError(
          path_ + ": journal already exists — pass --resume to continue "
                  "the session, or point --checkpoint at a fresh directory");
    }
    writer_.emplace(path_, 0);
  } else {
    JournalReadResult loaded = read_journal_file(path_);
    if (loaded.records.empty()) {
      throw CheckpointError(path_ +
                            ": journal is empty — nothing to resume");
    }
    if (loaded.torn_tail) {
      // SIGKILL mid-append leaves a partial final line; drop it on disk
      // so the writer continues from the last durable record.
      truncate_journal_file(path_, loaded.valid_bytes);
    }
    records_ = std::move(loaded.records);
    loaded_records_ = records_.size();
    writer_.emplace(path_, records_.size());
  }
  if (const char* env = std::getenv("CEAL_CRASH_AFTER_RECORDS")) {
    crash_after_records_ = std::strtoull(env, nullptr, 10);
  }
}

std::uint64_t CheckpointSession::appended_records() const {
  return writer_->records() - loaded_records_;
}

void CheckpointSession::mismatch(const std::string& why) const {
  throw CheckpointError(path_ + ":record " + std::to_string(cursor_ + 1) +
                        ": " + why);
}

void CheckpointSession::append(const json::Value& payload) {
  const std::uint64_t bytes_before = writer_->bytes_written();
  {
    telemetry::ScopedCausalSpan span(telemetry_, "checkpoint.flush");
    writer_->append(payload);
  }
  if (telemetry_ != nullptr) {
    telemetry_->count("checkpoint.records");
    telemetry_->count("checkpoint.bytes",
                      writer_->bytes_written() - bytes_before);
  }
  if (crash_after_records_ > 0 &&
      writer_->records() >= crash_after_records_) {
    // Deterministic mid-session kill for the tier-1 kill-resume gate:
    // the record just written is durable (fsynced), then the process
    // dies exactly as a node failure would take it.
    std::raise(SIGKILL);
  }
}

void CheckpointSession::begin_session(const CheckpointHeader& header) {
  CEAL_EXPECT_MSG(!header_done_, "begin_session called twice");
  header_done_ = true;
  const json::Value expected = header_json(header);
  if (!replaying()) {
    append(expected);
    return;
  }
  const json::Value& recorded = records_[cursor_];
  if (record_kind(recorded) != "header") {
    mismatch("first journal record is not a session header");
  }
  const json::Value* version = recorded.find("version");
  if (version == nullptr || version->as_int() != kCheckpointVersion) {
    mismatch("journal version " +
             (version == nullptr ? std::string("<missing>")
                                 : version->number_lexeme()) +
             " does not match supported version " +
             std::to_string(kCheckpointVersion));
  }
  // Field-by-field comparison so configuration skew names the knob.
  for (const auto& [key, value] : expected.members()) {
    const json::Value* got = recorded.find(key);
    if (got == nullptr || got->dump() != value.dump()) {
      mismatch("session '" + key + "' does not match the journal (journal " +
               (got == nullptr ? std::string("<missing>") : got->dump()) +
               ", session " + value.dump() +
               ") — resume must use the exact original configuration");
    }
  }
  for (const auto& [key, value] : recorded.members()) {
    (void)value;
    if (expected.find(key) == nullptr) {
      mismatch("journal header carries unknown member '" + key + "'");
    }
  }
  ++cursor_;
}

bool CheckpointSession::replay_measure(std::size_t pool_index,
                                       MeasureRecord& out) {
  CEAL_EXPECT_MSG(header_done_,
                  "checkpoint session used before begin_session");
  if (!replaying()) return false;
  const json::Value& recorded = records_[cursor_];
  const std::string& kind = record_kind(recorded);
  if (kind != "measure") {
    mismatch("replay requested a measurement but the journal holds a '" +
             kind + "' record — the session diverged from the journal");
  }
  MeasureRecord parsed;
  try {
    parsed = parse_measure(recorded);
  } catch (const CheckpointError&) {
    throw;  // already a one-line error with full context
  } catch (const std::exception& e) {
    mismatch(std::string("malformed measure record: ") + e.what());
  }
  if (parsed.pool_index != pool_index) {
    mismatch("journaled measurement targets pool index " +
             std::to_string(parsed.pool_index) +
             " but the session requested " + std::to_string(pool_index) +
             " — the session diverged from the journal");
  }
  out = parsed;
  ++cursor_;
  ++replayed_runs_;
  if (telemetry_ != nullptr) telemetry_->count("resume.replayed_runs");
  return true;
}

void CheckpointSession::record_measure(const MeasureRecord& record) {
  CEAL_EXPECT_MSG(header_done_,
                  "checkpoint session used before begin_session");
  append(measure_json(record));
}

void CheckpointSession::decision(json::Value payload) {
  CEAL_EXPECT_MSG(header_done_,
                  "checkpoint session used before begin_session");
  CEAL_EXPECT_MSG(payload.is_object() && payload.contains("kind"),
                  "decision payloads must be objects with a 'kind'");
  if (!replaying()) {
    append(payload);
    return;
  }
  const json::Value& recorded = records_[cursor_];
  if (recorded.dump() != payload.dump()) {
    mismatch("journaled '" + record_kind(recorded) +
             "' record does not match the replayed decision (journal " +
             recorded.dump() + ", session " + payload.dump() +
             ") — the session diverged from the journal");
  }
  ++cursor_;
}

void CheckpointSession::finish_session(const TuneResult& result) {
  json::Value payload = json::Value::object();
  payload.set("kind", json::Value::string("finish"));
  payload.set("runs_used", json::Value::number(
                               static_cast<std::uint64_t>(result.runs_used)));
  payload.set("measured",
              json::Value::number(static_cast<std::uint64_t>(
                  result.measured_indices.size())));
  payload.set("failed_runs",
              json::Value::number(
                  static_cast<std::uint64_t>(result.failed_runs)));
  payload.set("best_predicted_index",
              json::Value::number(static_cast<std::uint64_t>(
                  result.best_predicted_index)));
  payload.set("best_measured_index",
              json::Value::number(static_cast<std::uint64_t>(
                  result.best_measured_index)));
  payload.set("cost_exec_s", hex_double(result.cost_exec_s));
  payload.set("cost_comp_ch", hex_double(result.cost_comp_ch));
  decision(std::move(payload));
}

}  // namespace ceal::tuner
