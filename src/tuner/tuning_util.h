// Small helpers shared by the auto-tuning algorithms.
#pragma once

#include <span>
#include <vector>

#include "core/rng.h"
#include "tuner/autotuner.h"
#include "tuner/collector.h"
#include "tuner/surrogate.h"

namespace ceal::tuner {

/// The `count` unmeasured pool indices with the smallest scores
/// (lower = better). `scores` must cover the whole pool. Returns fewer
/// when not enough unmeasured configurations remain.
std::vector<std::size_t> top_unmeasured(std::span<const double> scores,
                                        const Collector& collector,
                                        std::size_t count);

/// `count` distinct random unmeasured pool indices (fewer if exhausted).
std::vector<std::size_t> random_unmeasured(const Collector& collector,
                                           std::size_t count,
                                           ceal::Rng& rng);

/// Measures every index in `batch` until the budget runs out; returns the
/// number actually measured.
std::size_t measure_batch(Collector& collector,
                          std::span<const std::size_t> batch);

/// Fits `surrogate` on everything the collector has measured so far.
void fit_on_measured(Surrogate& surrogate, const Collector& collector,
                     ceal::Rng& rng);

/// Builds the TuneResult from the final pool scores and the collector's
/// ledger (searcher = argmin of scores, §2.2).
TuneResult finalize_result(const Collector& collector,
                           std::vector<double> model_scores);

}  // namespace ceal::tuner
