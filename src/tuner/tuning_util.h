// Small helpers shared by the auto-tuning algorithms.
#pragma once

#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "core/json.h"
#include "core/rng.h"
#include "tuner/autotuner.h"
#include "tuner/collector.h"
#include "tuner/stepper.h"
#include "tuner/surrogate.h"

namespace ceal::tuner {

/// Bounded top-k selection over streamed (score, index) pairs: keeps the
/// k smallest scores seen so far in a max-heap of k entries, so ranking
/// a pool of N candidates costs O(N log k) time and O(k) memory instead
/// of materialising a full argsort permutation. Ties break towards the
/// lower index, which makes take() exactly the first k entries of
/// ceal::argsort (stable ascending) restricted to the pushed indices —
/// the tuners' selection is bitwise unchanged by the bounded path.
class TopKSelector {
 public:
  explicit TopKSelector(std::size_t k);

  /// Considers one candidate. Indices may arrive in any order but each
  /// at most once; feeding them ascending reproduces argsort exactly.
  void push(double score, std::size_t index);

  std::size_t size() const { return heap_.size(); }

  /// The kept indices, sorted ascending by (score, index). Leaves the
  /// selector empty and reusable.
  std::vector<std::size_t> take();

 private:
  std::size_t k_;
  /// Max-heap on (score, index): front() is the current worst keeper.
  std::vector<std::pair<double, std::size_t>> heap_;
};

/// Indices of the `k` smallest scores, ties towards the lower index —
/// equal to the first k entries of ceal::argsort(scores) without the
/// O(n log n) sort or the n-entry permutation.
std::vector<std::size_t> smallest_k(std::span<const double> scores,
                                    std::size_t k);

/// The `count` unmeasured pool indices with the smallest scores
/// (lower = better). `scores` must cover the whole pool. Returns fewer
/// when not enough unmeasured configurations remain. Indices whose
/// measurement failed count as measured and are never re-selected.
std::vector<std::size_t> top_unmeasured(std::span<const double> scores,
                                        const Collector& collector,
                                        std::size_t count);

/// `count` distinct random unmeasured pool indices (fewer if exhausted).
std::vector<std::size_t> random_unmeasured(const Collector& collector,
                                           std::size_t count,
                                           ceal::Rng& rng);

/// Measures every index in `batch` until the budget runs out. When the
/// problem injects faults, failed attempts can leave the batch short of
/// usable data; passing `topup_scores` (pool-wide, lower = better) lets
/// the helper keep measuring the best-scored unmeasured configurations
/// until `want_ok` measurements succeeded, the budget is spent, or the
/// pool is exhausted. Returns the number of *successful* measurements
/// gained (equal to the number measured on the fault-free path).
/// With a checkpoint attached the batch selection is journaled (and
/// validated on resume) before the first measurement runs.
std::size_t measure_batch(Collector& collector,
                          std::span<const std::size_t> batch,
                          std::span<const double> topup_scores = {},
                          std::size_t want_ok = 0);

/// Fits `surrogate` on every *successful* measurement the collector
/// holds. Failed and censored entries never reach the training set, and
/// a hard guard rejects non-finite targets before they can reach
/// GradientBoostedTrees::fit. Returns the fit's wall-clock seconds when
/// the problem carries telemetry (recorded as the "surrogate.fit" span),
/// 0 otherwise.
double fit_on_measured(Surrogate& surrogate, const Collector& collector,
                       ceal::Rng& rng);

/// Builds the TuneResult from the final pool scores and the collector's
/// ledger (searcher = argmin of scores, §2.2). Only successful
/// measurements override model scores; failed entries are reported in
/// TuneResult::failed_runs. Emits the "tune.finish" trace event when the
/// problem carries telemetry.
TuneResult finalize_result(const Collector& collector,
                           std::vector<double> model_scores);

/// Emits the "tune.start" trace event (algorithm, workflow, objective,
/// budget, fault/history flags) when the problem carries telemetry;
/// otherwise a single pointer branch. Every tuner calls this first.
void emit_tune_start(const TuningProblem& problem, const AutoTuner& algorithm,
                     std::size_t budget_runs);

/// Emits one per-iteration trace event for the simple tuner loops (AL,
/// RS, GEIST, ALpH, BO): the pool indices requested since `req_start`,
/// the successful values gained since `ok_start`, budget state, and the
/// iteration's model-fit/predict wall-clock under `timing`. No-op
/// without telemetry.
void emit_iteration_event(const TuningProblem& problem, const char* name,
                          std::size_t iteration, const Collector& collector,
                          std::size_t req_start, std::size_t ok_start,
                          double fit_s, double predict_s);

/// TunerProgress filled from the collector's ledger (budget and best
/// measured value) — the shared part of every stepper's progress()
/// override; model-switching tuners add their phase fields on top.
TunerProgress collector_progress(const Collector& collector);

/// Journals (live) or validates (resume) one tuner decision record with
/// the given kind and fields; a single pointer branch without a
/// checkpoint. `fields` are (key, value) pairs appended after "kind";
/// every value must be a deterministic function of the session seed.
void checkpoint_decision(
    const TuningProblem& problem, const char* kind,
    std::initializer_list<std::pair<const char*, json::Value>> fields);

}  // namespace ceal::tuner
