#include "tuner/active_learning.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/telemetry.h"
#include "tuner/collector.h"
#include "tuner/pool_scorer.h"
#include "tuner/surrogate.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

ActiveLearning::ActiveLearning(ActiveLearningParams params)
    : params_(params) {
  CEAL_EXPECT(params_.iterations >= 1);
  CEAL_EXPECT(params_.init_fraction > 0.0 && params_.init_fraction <= 1.0);
}

TuneResult ActiveLearning::tune(const TuningProblem& problem,
                                std::size_t budget_runs,
                                ceal::Rng& rng) const {
  Collector collector(problem, budget_runs, &rng);
  emit_tune_start(problem, *this, budget_runs);
  telemetry::Telemetry* tel = problem.telemetry;
  const auto& space = problem.workload->workflow.joint_space();
  // The pool is rescored every iteration: featurized once in the default
  // cached mode, streamed in blocks when pool_chunk_rows opts in.
  const PoolScorer pool_scorer(space, problem.pool->configs,
                               problem.pool_chunk_rows, tel);

  const auto warmup = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(
             params_.init_fraction * static_cast<double>(budget_runs))));
  measure_batch(collector, random_unmeasured(collector, warmup, rng));

  const std::size_t batch_size = std::max<std::size_t>(
      1, (budget_runs - std::min(warmup, budget_runs)) / params_.iterations);

  Surrogate surrogate(problem.surrogate_gbt);
  std::size_t iteration = 0;
  while (collector.remaining() > 0) {
    const std::size_t req_start = collector.measured_indices().size();
    const std::size_t ok_start = collector.ok_values().size();
    if (collector.ok_indices().empty()) {
      // Every warmup attempt failed; spend budget on fresh random
      // configurations until the surrogate has something to train on.
      const auto batch = random_unmeasured(collector, batch_size, rng);
      if (batch.empty()) break;
      measure_batch(collector, batch);
      emit_iteration_event(problem, "al.iteration", iteration++, collector,
                           req_start, ok_start, 0.0, 0.0);
      continue;
    }
    const double fit_s = fit_on_measured(surrogate, collector, rng);
    telemetry::ScopedSpan predict_span(tel, "surrogate.predict");
    const auto scores = pool_scorer.surrogate_scores(surrogate);
    const double predict_s = predict_span.stop();
    const auto batch = top_unmeasured(scores, collector, batch_size);
    if (batch.empty()) break;
    measure_batch(collector, batch, scores, batch_size);
    emit_iteration_event(problem, "al.iteration", iteration++, collector,
                         req_start, ok_start, fit_s, predict_s);
  }

  fit_on_measured(surrogate, collector, rng);
  telemetry::ScopedSpan final_span(tel, "surrogate.predict");
  auto scores = pool_scorer.surrogate_scores(surrogate);
  final_span.stop();
  return finalize_result(collector, std::move(scores));
}

}  // namespace ceal::tuner
