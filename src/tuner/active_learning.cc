#include "tuner/active_learning.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/error.h"
#include "core/telemetry.h"
#include "tuner/collector.h"
#include "tuner/pool_scorer.h"
#include "tuner/stepper.h"
#include "tuner/surrogate.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

ActiveLearning::ActiveLearning(ActiveLearningParams params)
    : params_(params) {
  CEAL_EXPECT(params_.iterations >= 1);
  CEAL_EXPECT(params_.init_fraction > 0.0 && params_.init_fraction <= 1.0);
}

namespace {

// AL sliced at its natural boundaries: the random warm-up batch, one
// fit/score/measure refinement per step, the final fit.
class ActiveLearningStepper final : public TunerStepper {
 public:
  ActiveLearningStepper(const ActiveLearning& algorithm,
                        const ActiveLearningParams& params,
                        const TuningProblem& problem, std::size_t budget_runs,
                        ceal::Rng& rng)
      : TunerStepper(problem, budget_runs, rng),
        params_(params),
        collector_(problem_, budget_runs, rng_),
        // The pool is rescored every iteration: featurized once here in
        // the default cached mode, streamed in blocks when
        // pool_chunk_rows opts in.
        pool_scorer_(problem_.workload->workflow.joint_space(),
                     problem_.pool->configs, problem_.pool_chunk_rows,
                     problem_.telemetry),
        surrogate_(problem_.surrogate_gbt) {
    emit_tune_start(problem_, algorithm, budget_);
  }

  TunerProgress progress() const override {
    return collector_progress(collector_);
  }

 private:
  enum class Phase { kWarmup, kLoop, kFinal };

  void do_step() override {
    telemetry::Telemetry* tel = problem_.telemetry;
    if (phase_ == Phase::kWarmup) {
      const auto warmup = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::llround(
                 params_.init_fraction * static_cast<double>(budget_))));
      measure_batch(collector_, random_unmeasured(collector_, warmup, *rng_));
      batch_size_ = std::max<std::size_t>(
          1, (budget_ - std::min(warmup, budget_)) / params_.iterations);
      phase_ = Phase::kLoop;
      return;
    }
    if (phase_ == Phase::kLoop) {
      while (collector_.remaining() > 0) {
        const std::size_t req_start = collector_.measured_indices().size();
        const std::size_t ok_start = collector_.ok_values().size();
        if (collector_.ok_indices().empty()) {
          // Every warmup attempt failed; spend budget on fresh random
          // configurations until the surrogate has something to train on.
          const auto batch =
              random_unmeasured(collector_, batch_size_, *rng_);
          if (batch.empty()) break;
          measure_batch(collector_, batch);
          emit_iteration_event(problem_, "al.iteration", iteration_++,
                               collector_, req_start, ok_start, 0.0, 0.0);
          return;  // one iteration per step
        }
        const double fit_s = fit_on_measured(surrogate_, collector_, *rng_);
        telemetry::ScopedCausalSpan predict_span(tel, "surrogate.predict");
        const auto scores = pool_scorer_.surrogate_scores(surrogate_);
        const double predict_s = predict_span.stop();
        const auto batch = top_unmeasured(scores, collector_, batch_size_);
        if (batch.empty()) break;
        measure_batch(collector_, batch, scores, batch_size_);
        emit_iteration_event(problem_, "al.iteration", iteration_++,
                             collector_, req_start, ok_start, fit_s,
                             predict_s);
        return;  // one iteration per step
      }
      phase_ = Phase::kFinal;
    }

    fit_on_measured(surrogate_, collector_, *rng_);
    telemetry::ScopedCausalSpan final_span(tel, "surrogate.predict");
    auto scores = pool_scorer_.surrogate_scores(surrogate_);
    final_span.stop();
    finish(finalize_result(collector_, std::move(scores)));
  }

  ActiveLearningParams params_;
  Collector collector_;
  const PoolScorer pool_scorer_;
  Surrogate surrogate_;
  Phase phase_ = Phase::kWarmup;
  std::size_t batch_size_ = 1;
  std::size_t iteration_ = 0;
};

}  // namespace

std::unique_ptr<TunerStepper> ActiveLearning::make_stepper(
    const TuningProblem& problem, std::size_t budget_runs,
    ceal::Rng& rng) const {
  return std::make_unique<ActiveLearningStepper>(*this, params_, problem,
                                                 budget_runs, rng);
}

}  // namespace ceal::tuner
