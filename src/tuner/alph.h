// ALpH (§4): the black-box alternative to CEAL's analytical combination.
// Component models are trained as in CEAL, but instead of combining their
// predictions with max/sum, ALpH feeds them as *extra features* —
// alongside the raw configuration — into a component-combining surrogate
// M'_0 trained on actual workflow runs, selected by an active-learning
// loop. Its deficiency (per the paper) is that it ignores the workflow
// structure and therefore needs real workflow runs from the start.
#pragma once

#include "tuner/autotuner.h"

namespace ceal::tuner {

struct AlphParams {
  std::size_t iterations = 8;
  double init_fraction = 0.25;
  /// Budget fraction used for component runs when no historical
  /// measurements are available (ignored in history mode).
  double component_fraction = 0.5;
};

class Alph final : public AutoTuner {
 public:
  explicit Alph(AlphParams params = {});

  std::string name() const override { return "ALpH"; }

  std::unique_ptr<TunerStepper> make_stepper(const TuningProblem& problem,
                                             std::size_t budget_runs,
                                             ceal::Rng& rng) const override;

 private:
  AlphParams params_;
};

}  // namespace ceal::tuner
