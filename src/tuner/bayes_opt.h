// Bayesian-optimisation auto-tuner — the §9 "future work" extension.
//
// Uncertainty comes from a bootstrapped ensemble of boosted-tree
// surrogates (no Gaussian process needed): each member is trained on a
// bootstrap resample of the measured data, and the ensemble's spread
// estimates the predictive standard deviation. Batches are selected by a
// lower-confidence-bound acquisition, mu - kappa * sigma (times are
// minimised), which naturally trades exploration against exploitation
// and tolerates measurement noise, as the paper anticipates for BO.
//
// With `bootstrap_with_low_fidelity` set, the first batch is chosen by
// CEAL's combined component models instead of at random — BO slotted
// into the bootstrapping method as the black-box phase-2 technique.
#pragma once

#include "tuner/autotuner.h"

namespace ceal::tuner {

struct BayesOptParams {
  std::size_t iterations = 8;
  /// Fraction of the budget used for the initial design.
  double init_fraction = 0.25;
  /// Ensemble members used for the uncertainty estimate.
  std::size_t ensemble_size = 8;
  /// Exploration weight in the LCB acquisition mu - kappa * sigma.
  double kappa = 1.0;
  /// Seed the initial batch with the low-fidelity model (costs m_R
  /// component rounds when no histories are available).
  bool bootstrap_with_low_fidelity = false;
  /// Component-run budget fraction when bootstrapping without histories.
  double mR_fraction = 0.5;
};

class BayesOpt final : public AutoTuner {
 public:
  explicit BayesOpt(BayesOptParams params = {});

  std::string name() const override {
    return params_.bootstrap_with_low_fidelity ? "BO-CEAL" : "BO";
  }

  std::unique_ptr<TunerStepper> make_stepper(const TuningProblem& problem,
                                             std::size_t budget_runs,
                                             ceal::Rng& rng) const override;

 private:
  BayesOptParams params_;
};

}  // namespace ceal::tuner
