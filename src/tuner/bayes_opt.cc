#include "tuner/bayes_opt.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/error.h"
#include "core/stats.h"
#include "core/telemetry.h"
#include "ml/dataset.h"
#include "ml/gbt.h"
#include "tuner/collector.h"
#include "tuner/low_fidelity.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

namespace {

/// Bootstrapped boosted-tree ensemble over log targets.
class Ensemble {
 public:
  Ensemble(std::size_t members, ceal::Rng& rng)
      : members_(members), rng_(&rng) {
    CEAL_EXPECT(members >= 2);
  }

  void fit(const config::ConfigSpace& space,
           const std::vector<config::Configuration>& configs,
           std::span<const double> targets) {
    CEAL_EXPECT(!configs.empty());
    models_.clear();
    models_.reserve(members_);
    const std::size_t n = configs.size();
    ml::GbtParams params = ml::GradientBoostedTrees::surrogate_defaults();
    params.n_rounds = 80;  // ensembles amortise the rounds
    for (std::size_t k = 0; k < members_; ++k) {
      ml::Dataset data(space.dimension());
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t pick = rng_->uniform_u64(n);  // bootstrap
        CEAL_EXPECT(targets[pick] > 0.0);
        data.add(space.features(configs[pick]), std::log(targets[pick]));
      }
      ml::GradientBoostedTrees model(params);
      model.fit(data, *rng_);
      models_.push_back(std::move(model));
    }
  }

  bool is_fitted() const { return !models_.empty(); }

  /// Mean and standard deviation of the ensemble in *time* units.
  void predict(const config::ConfigSpace& space,
               const config::Configuration& c, double& mu,
               double& sigma) const {
    std::vector<double> preds(models_.size());
    const auto f = space.features(c);
    for (std::size_t k = 0; k < models_.size(); ++k) {
      preds[k] = std::exp(models_[k].predict(f));
    }
    mu = ceal::mean(preds);
    sigma = preds.size() >= 2 ? ceal::stddev(preds) : 0.0;
  }

 private:
  std::size_t members_;
  ceal::Rng* rng_;
  std::vector<ml::GradientBoostedTrees> models_;
};

}  // namespace

BayesOpt::BayesOpt(BayesOptParams params) : params_(params) {
  CEAL_EXPECT(params_.iterations >= 1);
  CEAL_EXPECT(params_.init_fraction > 0.0 && params_.init_fraction <= 1.0);
  CEAL_EXPECT(params_.ensemble_size >= 2);
  CEAL_EXPECT(params_.kappa >= 0.0);
  CEAL_EXPECT(params_.mR_fraction >= 0.0 && params_.mR_fraction < 1.0);
}

TuneResult BayesOpt::tune(const TuningProblem& problem,
                          std::size_t budget_runs, ceal::Rng& rng) const {
  Collector collector(problem, budget_runs, &rng);
  emit_tune_start(problem, *this, budget_runs);
  telemetry::Telemetry* tel = problem.telemetry;
  const auto& workflow = problem.workload->workflow;
  const auto& space = workflow.joint_space();
  const std::size_t pool_size = problem.pool->size();

  // Initial design: random, or bootstrapped by the low-fidelity model.
  const auto init = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(
             params_.init_fraction * static_cast<double>(budget_runs))));
  if (params_.bootstrap_with_low_fidelity) {
    const std::vector<std::vector<std::size_t>>* component_indices;
    if (problem.components_are_history) {
      component_indices = &collector.all_component_samples();
    } else {
      const auto m_r = std::clamp<std::size_t>(
          static_cast<std::size_t>(std::llround(
              params_.mR_fraction * static_cast<double>(budget_runs))),
          1, budget_runs - 2);
      component_indices = &collector.acquire_component_samples(m_r, rng);
    }
    auto components = std::make_shared<const ComponentModelSet>(
        workflow, problem.objective, *problem.component_samples,
        *component_indices, rng);
    const LowFidelityModel low_fidelity(workflow, problem.objective,
                                        components);
    const auto low_scores = low_fidelity.score_many(problem.pool->configs);
    measure_batch(collector,
                  top_unmeasured(low_scores, collector,
                                 std::min(init, collector.remaining())));
  } else {
    measure_batch(collector, random_unmeasured(collector, init, rng));
  }

  const std::size_t batch_size = std::max<std::size_t>(
      1, (budget_runs - std::min(init, budget_runs)) / params_.iterations);

  Ensemble ensemble(params_.ensemble_size, rng);
  std::vector<config::Configuration> train_configs;
  const auto refit = [&] {
    if (tel != nullptr) tel->count("surrogate.fits");
    telemetry::ScopedSpan span(tel, "surrogate.fit");
    train_configs.clear();
    for (const std::size_t i : collector.ok_indices()) {
      train_configs.push_back(problem.pool->configs[i]);
    }
    ensemble.fit(space, train_configs, collector.ok_values());
    return span.stop();
  };

  std::size_t iteration = 0;
  while (collector.remaining() > 0) {
    const std::size_t req_start = collector.measured_indices().size();
    const std::size_t ok_start = collector.ok_values().size();
    if (collector.ok_indices().empty()) {
      const auto batch = random_unmeasured(collector, batch_size, rng);
      if (batch.empty()) break;
      measure_batch(collector, batch);
      emit_iteration_event(problem, "bo.iteration", iteration++, collector,
                           req_start, ok_start, 0.0, 0.0);
      continue;
    }
    const double fit_s = refit();
    // LCB acquisition: optimistic lower bound, lower = more attractive.
    telemetry::ScopedSpan predict_span(tel, "surrogate.predict");
    std::vector<double> acquisition(pool_size);
    for (std::size_t i = 0; i < pool_size; ++i) {
      double mu = 0.0, sigma = 0.0;
      ensemble.predict(space, problem.pool->configs[i], mu, sigma);
      acquisition[i] = mu - params_.kappa * sigma;
    }
    const double predict_s = predict_span.stop();
    const auto batch = top_unmeasured(acquisition, collector, batch_size);
    if (batch.empty()) break;
    measure_batch(collector, batch, acquisition, batch_size);
    emit_iteration_event(problem, "bo.iteration", iteration++, collector,
                         req_start, ok_start, fit_s, predict_s);
  }

  // Final ranking uses the ensemble mean (no exploration bonus).
  refit();
  telemetry::ScopedSpan final_span(tel, "surrogate.predict");
  std::vector<double> scores(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    double mu = 0.0, sigma = 0.0;
    ensemble.predict(space, problem.pool->configs[i], mu, sigma);
    scores[i] = mu;
  }
  final_span.stop();
  return finalize_result(collector, std::move(scores));
}

}  // namespace ceal::tuner
