#include "tuner/bayes_opt.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/error.h"
#include "core/stats.h"
#include "core/telemetry.h"
#include "ml/dataset.h"
#include "ml/gbt.h"
#include "tuner/collector.h"
#include "tuner/low_fidelity.h"
#include "tuner/stepper.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

namespace {

/// Bootstrapped boosted-tree ensemble over log targets.
class Ensemble {
 public:
  Ensemble(std::size_t members, ceal::Rng& rng)
      : members_(members), rng_(&rng) {
    CEAL_EXPECT(members >= 2);
  }

  void fit(const config::ConfigSpace& space,
           const std::vector<config::Configuration>& configs,
           std::span<const double> targets) {
    CEAL_EXPECT(!configs.empty());
    models_.clear();
    models_.reserve(members_);
    const std::size_t n = configs.size();
    ml::GbtParams params = ml::GradientBoostedTrees::surrogate_defaults();
    params.n_rounds = 80;  // ensembles amortise the rounds
    for (std::size_t k = 0; k < members_; ++k) {
      ml::Dataset data(space.dimension());
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t pick = rng_->uniform_u64(n);  // bootstrap
        CEAL_EXPECT(targets[pick] > 0.0);
        data.add(space.features(configs[pick]), std::log(targets[pick]));
      }
      ml::GradientBoostedTrees model(params);
      model.fit(data, *rng_);
      models_.push_back(std::move(model));
    }
  }

  bool is_fitted() const { return !models_.empty(); }

  /// Mean and standard deviation of the ensemble in *time* units.
  void predict(const config::ConfigSpace& space,
               const config::Configuration& c, double& mu,
               double& sigma) const {
    std::vector<double> preds(models_.size());
    const auto f = space.features(c);
    for (std::size_t k = 0; k < models_.size(); ++k) {
      preds[k] = std::exp(models_[k].predict(f));
    }
    mu = ceal::mean(preds);
    sigma = preds.size() >= 2 ? ceal::stddev(preds) : 0.0;
  }

 private:
  std::size_t members_;
  ceal::Rng* rng_;
  std::vector<ml::GradientBoostedTrees> models_;
};

}  // namespace

BayesOpt::BayesOpt(BayesOptParams params) : params_(params) {
  CEAL_EXPECT(params_.iterations >= 1);
  CEAL_EXPECT(params_.init_fraction > 0.0 && params_.init_fraction <= 1.0);
  CEAL_EXPECT(params_.ensemble_size >= 2);
  CEAL_EXPECT(params_.kappa >= 0.0);
  CEAL_EXPECT(params_.mR_fraction >= 0.0 && params_.mR_fraction < 1.0);
}

namespace {

// BO sliced at its natural boundaries: the initial design (random or
// low-fidelity-seeded), one fit/acquire/measure refinement per step, the
// final exploration-free ranking.
class BayesOptStepper final : public TunerStepper {
 public:
  BayesOptStepper(const BayesOpt& algorithm, const BayesOptParams& params,
                  const TuningProblem& problem, std::size_t budget_runs,
                  ceal::Rng& rng)
      : TunerStepper(problem, budget_runs, rng),
        params_(params),
        collector_(problem_, budget_runs, rng_),
        ensemble_(params_.ensemble_size, *rng_) {
    emit_tune_start(problem_, algorithm, budget_);
  }

  TunerProgress progress() const override {
    return collector_progress(collector_);
  }

 private:
  enum class Phase { kInit, kLoop, kFinal };

  double refit() {
    telemetry::Telemetry* tel = problem_.telemetry;
    if (tel != nullptr) tel->count("surrogate.fits");
    telemetry::ScopedCausalSpan span(tel, "surrogate.fit");
    train_configs_.clear();
    for (const std::size_t i : collector_.ok_indices()) {
      train_configs_.push_back(problem_.pool->configs[i]);
    }
    ensemble_.fit(problem_.workload->workflow.joint_space(), train_configs_,
                  collector_.ok_values());
    return span.stop();
  }

  void do_step() override {
    telemetry::Telemetry* tel = problem_.telemetry;
    const auto& workflow = problem_.workload->workflow;
    const auto& space = workflow.joint_space();
    const std::size_t pool_size = problem_.pool->size();
    if (phase_ == Phase::kInit) {
      // Initial design: random, or bootstrapped by the low-fidelity model.
      const auto init = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::llround(
                 params_.init_fraction * static_cast<double>(budget_))));
      if (params_.bootstrap_with_low_fidelity) {
        const std::vector<std::vector<std::size_t>>* component_indices;
        if (problem_.components_are_history) {
          component_indices = &collector_.all_component_samples();
        } else {
          const auto m_r = std::clamp<std::size_t>(
              static_cast<std::size_t>(std::llround(
                  params_.mR_fraction * static_cast<double>(budget_))),
              1, budget_ - 2);
          component_indices =
              &collector_.acquire_component_samples(m_r, *rng_);
        }
        auto components = std::make_shared<const ComponentModelSet>(
            workflow, problem_.objective, *problem_.component_samples,
            *component_indices, *rng_);
        const LowFidelityModel low_fidelity(workflow, problem_.objective,
                                            components);
        const auto low_scores =
            low_fidelity.score_many(problem_.pool->configs);
        measure_batch(collector_,
                      top_unmeasured(low_scores, collector_,
                                     std::min(init, collector_.remaining())));
      } else {
        measure_batch(collector_,
                      random_unmeasured(collector_, init, *rng_));
      }
      batch_size_ = std::max<std::size_t>(
          1, (budget_ - std::min(init, budget_)) / params_.iterations);
      phase_ = Phase::kLoop;
      return;
    }
    if (phase_ == Phase::kLoop) {
      while (collector_.remaining() > 0) {
        const std::size_t req_start = collector_.measured_indices().size();
        const std::size_t ok_start = collector_.ok_values().size();
        if (collector_.ok_indices().empty()) {
          const auto batch =
              random_unmeasured(collector_, batch_size_, *rng_);
          if (batch.empty()) break;
          measure_batch(collector_, batch);
          emit_iteration_event(problem_, "bo.iteration", iteration_++,
                               collector_, req_start, ok_start, 0.0, 0.0);
          return;  // one iteration per step
        }
        const double fit_s = refit();
        // LCB acquisition: optimistic lower bound, lower = more
        // attractive.
        telemetry::ScopedCausalSpan predict_span(tel, "surrogate.predict");
        std::vector<double> acquisition(pool_size);
        for (std::size_t i = 0; i < pool_size; ++i) {
          double mu = 0.0, sigma = 0.0;
          ensemble_.predict(space, problem_.pool->configs[i], mu, sigma);
          acquisition[i] = mu - params_.kappa * sigma;
        }
        const double predict_s = predict_span.stop();
        const auto batch =
            top_unmeasured(acquisition, collector_, batch_size_);
        if (batch.empty()) break;
        measure_batch(collector_, batch, acquisition, batch_size_);
        emit_iteration_event(problem_, "bo.iteration", iteration_++,
                             collector_, req_start, ok_start, fit_s,
                             predict_s);
        return;  // one iteration per step
      }
      phase_ = Phase::kFinal;
    }

    // Final ranking uses the ensemble mean (no exploration bonus).
    refit();
    telemetry::ScopedCausalSpan final_span(tel, "surrogate.predict");
    std::vector<double> scores(pool_size);
    for (std::size_t i = 0; i < pool_size; ++i) {
      double mu = 0.0, sigma = 0.0;
      ensemble_.predict(space, problem_.pool->configs[i], mu, sigma);
      scores[i] = mu;
    }
    final_span.stop();
    finish(finalize_result(collector_, std::move(scores)));
  }

  BayesOptParams params_;
  Collector collector_;
  Ensemble ensemble_;
  std::vector<config::Configuration> train_configs_;
  Phase phase_ = Phase::kInit;
  std::size_t batch_size_ = 1;
  std::size_t iteration_ = 0;
};

}  // namespace

std::unique_ptr<TunerStepper> BayesOpt::make_stepper(
    const TuningProblem& problem, std::size_t budget_runs,
    ceal::Rng& rng) const {
  return std::make_unique<BayesOptStepper>(*this, params_, problem,
                                           budget_runs, rng);
}

}  // namespace ceal::tuner
