#include "tuner/random_search.h"

#include "core/telemetry.h"
#include "tuner/collector.h"
#include "tuner/surrogate.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

TuneResult RandomSearch::tune(const TuningProblem& problem,
                              std::size_t budget_runs,
                              ceal::Rng& rng) const {
  Collector collector(problem, budget_runs, &rng);
  emit_tune_start(problem, *this, budget_runs);
  std::size_t sweep = 0;
  {
    const std::size_t req_start = collector.measured_indices().size();
    const std::size_t ok_start = collector.ok_values().size();
    const auto batch = random_unmeasured(collector, budget_runs, rng);
    measure_batch(collector, batch);
    emit_iteration_event(problem, "rs.sweep", sweep++, collector, req_start,
                         ok_start, 0.0, 0.0);
  }
  // Under fault injection (retries or free retries) budget can remain
  // after the first sweep; keep drawing random configurations until it
  // is spent. The fault-free path spends exactly the budget above.
  while (collector.remaining() > 0) {
    const std::size_t req_start = collector.measured_indices().size();
    const std::size_t ok_start = collector.ok_values().size();
    const auto more = random_unmeasured(collector, collector.remaining(), rng);
    if (more.empty()) break;
    measure_batch(collector, more);
    emit_iteration_event(problem, "rs.sweep", sweep++, collector, req_start,
                         ok_start, 0.0, 0.0);
  }

  Surrogate surrogate(problem.surrogate_gbt);
  fit_on_measured(surrogate, collector, rng);
  telemetry::ScopedSpan predict_span(problem.telemetry, "surrogate.predict");
  auto scores = surrogate.predict_many(
      problem.workload->workflow.joint_space(), problem.pool->configs);
  predict_span.stop();
  return finalize_result(collector, std::move(scores));
}

}  // namespace ceal::tuner
