#include "tuner/random_search.h"

#include "tuner/collector.h"
#include "tuner/surrogate.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

TuneResult RandomSearch::tune(const TuningProblem& problem,
                              std::size_t budget_runs,
                              ceal::Rng& rng) const {
  Collector collector(problem, budget_runs);
  const auto batch = random_unmeasured(collector, budget_runs, rng);
  measure_batch(collector, batch);

  Surrogate surrogate;
  fit_on_measured(surrogate, collector, rng);
  auto scores = surrogate.predict_many(
      problem.workload->workflow.joint_space(), problem.pool->configs);
  return finalize_result(collector, std::move(scores));
}

}  // namespace ceal::tuner
