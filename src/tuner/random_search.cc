#include "tuner/random_search.h"

#include <memory>
#include <optional>

#include "core/telemetry.h"
#include "tuner/collector.h"
#include "tuner/stepper.h"
#include "tuner/surrogate.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

namespace {

// RS as a state machine: one budget-sized random sweep, then (only under
// fault injection, where retries can leave budget) one drain batch per
// step, then the single surrogate fit. Slicing is the only change — the
// operation sequence is the monolithic loop's, verbatim.
class RandomSearchStepper final : public TunerStepper {
 public:
  RandomSearchStepper(const RandomSearch& algorithm,
                      const TuningProblem& problem, std::size_t budget_runs,
                      ceal::Rng& rng)
      : TunerStepper(problem, budget_runs, rng),
        collector_(problem_, budget_runs, rng_) {
    emit_tune_start(problem_, algorithm, budget_);
  }

  TunerProgress progress() const override {
    return collector_progress(collector_);
  }

 private:
  enum class Phase { kSweep, kDrain, kFinal };

  void do_step() override {
    if (phase_ == Phase::kSweep) {
      const std::size_t req_start = collector_.measured_indices().size();
      const std::size_t ok_start = collector_.ok_values().size();
      const auto batch = random_unmeasured(collector_, budget_, *rng_);
      measure_batch(collector_, batch);
      emit_iteration_event(problem_, "rs.sweep", sweep_++, collector_,
                           req_start, ok_start, 0.0, 0.0);
      phase_ = Phase::kDrain;
      return;
    }
    if (phase_ == Phase::kDrain) {
      // Under fault injection (retries or free retries) budget can remain
      // after the first sweep; keep drawing random configurations until
      // it is spent. The fault-free path spends exactly the budget above.
      if (collector_.remaining() > 0) {
        const std::size_t req_start = collector_.measured_indices().size();
        const std::size_t ok_start = collector_.ok_values().size();
        const auto more =
            random_unmeasured(collector_, collector_.remaining(), *rng_);
        if (!more.empty()) {
          measure_batch(collector_, more);
          emit_iteration_event(problem_, "rs.sweep", sweep_++, collector_,
                               req_start, ok_start, 0.0, 0.0);
          return;
        }
      }
      phase_ = Phase::kFinal;
    }

    Surrogate surrogate(problem_.surrogate_gbt);
    fit_on_measured(surrogate, collector_, *rng_);
    telemetry::ScopedCausalSpan predict_span(problem_.telemetry,
                                       "surrogate.predict");
    auto scores = surrogate.predict_many(
        problem_.workload->workflow.joint_space(), problem_.pool->configs);
    predict_span.stop();
    finish(finalize_result(collector_, std::move(scores)));
  }

  Collector collector_;
  Phase phase_ = Phase::kSweep;
  std::size_t sweep_ = 0;
};

}  // namespace

std::unique_ptr<TunerStepper> RandomSearch::make_stepper(
    const TuningProblem& problem, std::size_t budget_runs,
    ceal::Rng& rng) const {
  return std::make_unique<RandomSearchStepper>(*this, problem, budget_runs,
                                               rng);
}

}  // namespace ceal::tuner
