#include "tuner/random_search.h"

#include "tuner/collector.h"
#include "tuner/surrogate.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

TuneResult RandomSearch::tune(const TuningProblem& problem,
                              std::size_t budget_runs,
                              ceal::Rng& rng) const {
  Collector collector(problem, budget_runs, &rng);
  const auto batch = random_unmeasured(collector, budget_runs, rng);
  measure_batch(collector, batch);
  // Under fault injection (retries or free retries) budget can remain
  // after the first sweep; keep drawing random configurations until it
  // is spent. The fault-free path spends exactly the budget above.
  while (collector.remaining() > 0) {
    const auto more = random_unmeasured(collector, collector.remaining(), rng);
    if (more.empty()) break;
    measure_batch(collector, more);
  }

  Surrogate surrogate;
  fit_on_measured(surrogate, collector, rng);
  auto scores = surrogate.predict_many(
      problem.workload->workflow.joint_space(), problem.pool->configs);
  return finalize_result(collector, std::move(scores));
}

}  // namespace ceal::tuner
