// The collector of the auto-tuner (§2.2): runs the target workflow (or its
// component applications) at configurations chosen by the modeler, caches
// the measurements, and accounts for the data-collection budget.
//
// The budget unit is one workflow run (Alg. 1 input m). Running every
// component application once at one configuration each also costs one
// unit, per §6 ("the cost is equivalent to running the complete workflow
// m_R times") — unless the component samples are historical (§7.5), in
// which case they are free.
//
// Measurements are failure-aware: the problem's MeasurementPolicy can
// inject node faults, walltime censoring, and outlier corruption into
// every run attempt. A failed attempt still charges budget (the machine
// time is spent either way); a bounded retry policy may spend further
// units on the same configuration. Every recorded entry carries an
// explicit RunStatus — consumers that need clean training data read the
// ok_indices()/ok_values() views.
//
// Measurement *execution* is pluggable (measure/backend.h): when the
// problem carries a MeasureBackend the collector asks it for the raw run
// data of each pool row and keeps everything that defines the session —
// fault injection, retries, rng draws, budget charging, checkpoint
// journaling — in here, in request order. Backends are therefore pure
// dispatch strategies; any backend yields bitwise-identical sessions.
#pragma once

#include <span>
#include <vector>

#include "core/rng.h"
#include "tuner/measured_pool.h"

namespace ceal::tuner {

/// Result of one measurement request (possibly several run attempts).
struct MeasureOutcome {
  sim::RunStatus status = sim::RunStatus::kOk;
  /// Objective value; meaningful only when status == kOk.
  double value = 0.0;
  /// Run attempts this request consumed (0 for a cached repeat).
  std::size_t attempts = 0;
};

class Collector {
 public:
  /// `rng` drives fault injection and may be null when the problem's
  /// policy has faults disabled; a fault-injecting policy requires it.
  /// The fault stream is split off `rng` exactly once here, so a
  /// fault-free problem leaves the caller's generator untouched.
  Collector(const TuningProblem& problem, std::size_t budget_runs,
            ceal::Rng* rng = nullptr);

  const TuningProblem& problem() const { return *problem_; }

  std::size_t budget() const { return budget_; }
  std::size_t runs_used() const { return runs_used_; }
  std::size_t remaining() const { return budget_ - runs_used_; }

  /// Measures the pool configuration at `pool_index` and returns the
  /// objective value. The first measurement charges one budget unit
  /// (throws PreconditionError when the budget is exhausted); repeats are
  /// served from the cache for free. Throws PreconditionError when the
  /// attempt (after retries) failed or was censored — callers running
  /// under fault injection should use try_measure instead.
  double measure(std::size_t pool_index);

  /// Failure-aware measurement: attempts the run up to the policy's
  /// max_attempts times and records the entry with its final status. A
  /// previously requested index is served from the cache for free,
  /// whatever its status — a failed configuration is not retried by a
  /// repeat request. Throws PreconditionError only when a *new* request
  /// arrives with zero remaining budget.
  MeasureOutcome try_measure(std::size_t pool_index);

  /// Scheduling hint for a parallel measurement backend: these pool
  /// indices are about to be requested in order (tuner batches call this
  /// once per batch). Forwards the not-yet-measured subset to the
  /// problem's backend; a no-op with no backend, and during checkpoint
  /// replay (replayed measurements never reach the backend). Never
  /// affects any result.
  void prefetch(std::span<const std::size_t> indices);

  bool is_measured(std::size_t pool_index) const;

  /// Pool indices requested so far, in request order (all statuses).
  const std::vector<std::size_t>& measured_indices() const {
    return measured_;
  }

  /// Objective values matching measured_indices(). Entries whose status
  /// is not kOk hold quiet NaN — filter by status or use ok_values().
  const std::vector<double>& measured_values() const { return values_; }

  /// Run status per measured_indices() entry.
  const std::vector<sim::RunStatus>& measured_statuses() const {
    return statuses_;
  }

  /// Successfully measured pool indices, in measurement order — the
  /// training view every surrogate fit must use.
  const std::vector<std::size_t>& ok_indices() const { return ok_indices_; }

  /// Objective values matching ok_indices(). Never contains NaN.
  const std::vector<double>& ok_values() const { return ok_values_; }

  /// Requests that ended failed or censored.
  std::size_t failed_count() const {
    return measured_.size() - ok_indices_.size();
  }

  /// True once at least one request succeeded (ok_values() non-empty).
  bool has_best_ok() const { return !ok_values_.empty(); }
  /// Best (lowest) objective value measured so far. Requires
  /// has_best_ok(). Tracked incrementally so live progress snapshots
  /// (serve/session.h) cost O(1).
  double best_ok_value() const { return best_ok_value_; }
  /// Pool index of the best measured configuration. Requires
  /// has_best_ok().
  std::size_t best_ok_index() const { return best_ok_index_; }

  /// Acquires `rounds` additional solo samples per component application,
  /// drawn randomly without replacement from the pre-measured component
  /// pools. Charges one budget unit per *effective* round — rounds beyond
  /// the component pools' capacity neither draw nor charge. Charges
  /// nothing when the problem marks the samples as historical. Returns,
  /// per component, the cumulative sample indices available after this
  /// call.
  const std::vector<std::vector<std::size_t>>& acquire_component_samples(
      std::size_t rounds, ceal::Rng& rng);

  /// All component samples, free of charge. Only valid when the problem's
  /// components_are_history flag is set.
  const std::vector<std::vector<std::size_t>>& all_component_samples();

  /// Component sample indices acquired so far (without further charge).
  const std::vector<std::vector<std::size_t>>& component_indices() const {
    return component_indices_;
  }

  /// Accumulated collection cost: total wall-clock seconds of all charged
  /// runs (workflow runs plus sequential component runs). Failed attempts
  /// bill the time they ran before dying; censored attempts bill the
  /// deadline.
  double cost_exec_s() const { return cost_exec_s_; }
  /// Accumulated collection cost in core-hours.
  double cost_comp_ch() const { return cost_comp_ch_; }

  /// Total *virtual* retry-backoff delay accounted so far (seconds):
  /// the sum of the policy's seeded backoff draws across all retry
  /// attempts. Pure accounting — the collector never sleeps, and the
  /// value feeds only the `timing.measure.backoff_s` histogram and
  /// tests. Zero while faults are disabled or no retry has happened.
  double backoff_total_s() const { return backoff_total_s_; }

 private:
  void charge(std::size_t units);
  void record(std::size_t pool_index, const MeasureOutcome& outcome);

  const TuningProblem* problem_;
  std::size_t budget_;
  std::size_t runs_used_ = 0;
  double cost_exec_s_ = 0.0;
  double cost_comp_ch_ = 0.0;
  double backoff_total_s_ = 0.0;

  bool faults_enabled_ = false;
  ceal::Rng fault_rng_{0};

  std::vector<bool> seen_;                 // per pool index
  std::vector<MeasureOutcome> outcomes_;   // per pool index (when seen)
  std::vector<std::size_t> measured_;      // request order, all statuses
  std::vector<double> values_;             // objective values (NaN if not ok)
  std::vector<sim::RunStatus> statuses_;   // parallel to measured_
  std::vector<std::size_t> ok_indices_;    // successful subset
  std::vector<double> ok_values_;
  double best_ok_value_ = 0.0;             // min over ok_values_
  std::size_t best_ok_index_ = 0;
  std::vector<std::vector<std::size_t>> component_indices_;
  std::vector<std::vector<std::size_t>> component_unused_;
};

}  // namespace ceal::tuner
