// The collector of the auto-tuner (§2.2): runs the target workflow (or its
// component applications) at configurations chosen by the modeler, caches
// the measurements, and accounts for the data-collection budget.
//
// The budget unit is one workflow run (Alg. 1 input m). Running every
// component application once at one configuration each also costs one
// unit, per §6 ("the cost is equivalent to running the complete workflow
// m_R times") — unless the component samples are historical (§7.5), in
// which case they are free.
#pragma once

#include <vector>

#include "core/rng.h"
#include "tuner/measured_pool.h"

namespace ceal::tuner {

class Collector {
 public:
  Collector(const TuningProblem& problem, std::size_t budget_runs);

  const TuningProblem& problem() const { return *problem_; }

  std::size_t budget() const { return budget_; }
  std::size_t runs_used() const { return runs_used_; }
  std::size_t remaining() const { return budget_ - runs_used_; }

  /// Measures the pool configuration at `pool_index` and returns the
  /// objective value. The first measurement charges one budget unit
  /// (throws PreconditionError when the budget is exhausted); repeats are
  /// served from the cache for free.
  double measure(std::size_t pool_index);

  bool is_measured(std::size_t pool_index) const;

  /// Pool indices measured so far, in measurement order.
  const std::vector<std::size_t>& measured_indices() const {
    return measured_;
  }

  /// Objective values matching measured_indices().
  const std::vector<double>& measured_values() const { return values_; }

  /// Acquires `rounds` additional solo samples per component application,
  /// drawn randomly without replacement from the pre-measured component
  /// pools. Charges `rounds` budget units unless the problem marks the
  /// samples as historical. Returns, per component, the cumulative sample
  /// indices available after this call.
  const std::vector<std::vector<std::size_t>>& acquire_component_samples(
      std::size_t rounds, ceal::Rng& rng);

  /// All component samples, free of charge. Only valid when the problem's
  /// components_are_history flag is set.
  const std::vector<std::vector<std::size_t>>& all_component_samples();

  /// Component sample indices acquired so far (without further charge).
  const std::vector<std::vector<std::size_t>>& component_indices() const {
    return component_indices_;
  }

  /// Accumulated collection cost: total wall-clock seconds of all charged
  /// runs (workflow runs plus sequential component runs).
  double cost_exec_s() const { return cost_exec_s_; }
  /// Accumulated collection cost in core-hours.
  double cost_comp_ch() const { return cost_comp_ch_; }

 private:
  void charge(std::size_t units);

  const TuningProblem* problem_;
  std::size_t budget_;
  std::size_t runs_used_ = 0;
  double cost_exec_s_ = 0.0;
  double cost_comp_ch_ = 0.0;

  std::vector<bool> seen_;                 // per pool index
  std::vector<std::size_t> measured_;      // measurement order
  std::vector<double> values_;             // objective values
  std::vector<std::vector<std::size_t>> component_indices_;
  std::vector<std::vector<std::size_t>> component_unused_;
};

}  // namespace ceal::tuner
