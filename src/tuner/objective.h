// Optimisation objectives (§4): execution time (wall-clock) and computer
// time (core-hours). Both are lower-is-better. The objective decides the
// analytical combination function of the low-fidelity model: max of
// component execution times (Eqn. 1) vs sum of component computer times
// (Eqn. 2).
#pragma once

#include <string>

#include "sim/workflow.h"

namespace ceal::tuner {

enum class Objective {
  kExecTime,      ///< minimise workflow wall-clock time
  kComputerTime,  ///< minimise consumed core-hours
};

inline double metric(const sim::Measurement& m, Objective objective) {
  return objective == Objective::kExecTime ? m.exec_s : m.comp_ch;
}

inline std::string objective_name(Objective objective) {
  return objective == Objective::kExecTime ? "exec_time" : "computer_time";
}

}  // namespace ceal::tuner
