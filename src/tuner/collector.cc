#include "tuner/collector.h"

#include <algorithm>
#include <limits>
#include <span>

#include "core/backoff.h"
#include "core/error.h"
#include "core/telemetry.h"
#include "measure/backend.h"
#include "tuner/checkpoint.h"

namespace ceal::tuner {

namespace {

/// Stream tag for the fault-injection generator split off the tuner rng.
constexpr std::uint64_t kFaultStream = 0xFA171A7EULL;

/// Seed root of the per-request retry-backoff streams (xor'd with the
/// pool index, so the virtual delay schedule of a request is a function
/// of the request alone — independent of request order and of the fault
/// stream).
constexpr std::uint64_t kBackoffSeed = 0xBACC0FFULL;

}  // namespace

Collector::Collector(const TuningProblem& problem, std::size_t budget_runs,
                     ceal::Rng* rng)
    : problem_(&problem), budget_(budget_runs) {
  CEAL_EXPECT(problem.workload != nullptr);
  CEAL_EXPECT(problem.pool != nullptr);
  CEAL_EXPECT(problem.component_samples != nullptr);
  CEAL_EXPECT(budget_runs >= 1);
  CEAL_EXPECT_MSG(problem.measurement.max_attempts >= 1,
                  "measurement policy needs at least one attempt");
  faults_enabled_ = problem.measurement.faults.enabled();
  if (faults_enabled_) {
    problem.measurement.faults.validate();
    CEAL_EXPECT_MSG(rng != nullptr,
                    "fault-injecting measurements need an rng");
    fault_rng_ = rng->split(kFaultStream);
  }
  seen_.assign(problem.pool->size(), false);
  outcomes_.resize(problem.pool->size());

  const std::size_t n_components = problem.component_samples->size();
  component_indices_.resize(n_components);
  component_unused_.resize(n_components);
  for (std::size_t j = 0; j < n_components; ++j) {
    const std::size_t n = (*problem.component_samples)[j].size();
    component_unused_[j].resize(n);
    for (std::size_t i = 0; i < n; ++i) component_unused_[j][i] = i;
  }
}

void Collector::charge(std::size_t units) {
  CEAL_EXPECT_MSG(runs_used_ + units <= budget_,
                  "data-collection budget exhausted");
  runs_used_ += units;
}

void Collector::record(std::size_t pool_index,
                       const MeasureOutcome& outcome) {
  seen_[pool_index] = true;
  outcomes_[pool_index] = outcome;
  measured_.push_back(pool_index);
  statuses_.push_back(outcome.status);
  if (outcome.status == sim::RunStatus::kOk) {
    values_.push_back(outcome.value);
    if (ok_values_.empty() || outcome.value < best_ok_value_) {
      best_ok_value_ = outcome.value;
      best_ok_index_ = pool_index;
    }
    ok_indices_.push_back(pool_index);
    ok_values_.push_back(outcome.value);
  } else {
    values_.push_back(std::numeric_limits<double>::quiet_NaN());
  }
}

MeasureOutcome Collector::try_measure(std::size_t pool_index) {
  const MeasuredPool& pool = *problem_->pool;
  CEAL_EXPECT(pool_index < pool.size());
  telemetry::ScopedCausalSpan measure_span(problem_->telemetry,
                                           "collector.measure");
  if (seen_[pool_index]) {
    // Cached repeat — same verdict, no charge. A configuration that
    // failed stays failed; retrying it costs a fresh entry elsewhere.
    if (telemetry::Telemetry* tel = problem_->telemetry) {
      tel->count("measure.cached");
    }
    MeasureOutcome cached = outcomes_[pool_index];
    cached.attempts = 0;
    return cached;
  }

  CheckpointSession* checkpoint = problem_->checkpoint;
  MeasureOutcome out;
  const std::size_t used_before = runs_used_;
  const double exec_before = cost_exec_s_;
  const double backoff_before = backoff_total_s_;
  MeasureRecord journaled;
  bool replayed = false;
  if (checkpoint != nullptr &&
      checkpoint->replay_measure(pool_index, journaled)) {
    // Served from the journal: the run's machine time was already spent
    // before the crash, so restore the recorded outcome and ledger
    // totals instead of re-running. The fault stream position is handed
    // across the crash point so the first live attempt afterwards draws
    // exactly what the uninterrupted session would have drawn.
    replayed = true;
    CEAL_EXPECT_MSG(journaled.budget_used >= runs_used_ &&
                        journaled.budget_used <= budget_,
                    "journaled measurement does not fit the budget ledger");
    runs_used_ = journaled.budget_used;
    cost_exec_s_ = journaled.cost_exec_s;
    cost_comp_ch_ = journaled.cost_comp_ch;
    out.status = journaled.status;
    out.value = journaled.value;
    out.attempts = journaled.attempts;
    if (faults_enabled_) fault_rng_.set_state(journaled.fault_rng_state);
  } else {
    charge(1);  // the first attempt always costs one unit (throws when dry)
    // Raw run data: the problem's backend when one is attached (which
    // must return the pool row bitwise — measure/backend.h), else the
    // pool row read inline. Executed only on the live path: a replayed
    // measurement's machine time was spent before the crash.
    double exec = pool.exec_s[pool_index];
    double comp = pool.comp_ch[pool_index];
    if (measure::MeasureBackend* backend = problem_->measure) {
      const measure::RawRun raw = backend->run(pool_index);
      exec = raw.exec_s;
      comp = raw.comp_ch;
    }
    const double value =
        problem_->objective == Objective::kExecTime ? exec : comp;
    out.attempts = 1;
    if (!faults_enabled_) {
      out.status = sim::RunStatus::kOk;
      out.value = value;
      cost_exec_s_ += exec;
      cost_comp_ch_ += comp;
    } else {
      const MeasurementPolicy& policy = problem_->measurement;
      // Virtual delay schedule between retries: deterministic per
      // request (seed is a function of the pool index alone), accounted
      // but never slept. Retrying is bounded by max_attempts and the
      // budget exactly as before — the schedule never decides whether
      // an attempt runs.
      Backoff backoff(policy.retry_backoff, kBackoffSeed ^ pool_index);
      for (;;) {
        const sim::FaultOutcome fo =
            sim::apply_faults(policy.faults, exec, fault_rng_);
        // Bill the wall-clock the attempt actually held the allocation;
        // core-hours scale with the same fraction of the run.
        cost_exec_s_ += fo.elapsed_s;
        cost_comp_ch_ += comp * (fo.elapsed_s / exec);
        if (fo.status == sim::RunStatus::kOk) {
          out.status = sim::RunStatus::kOk;
          out.value = value * fo.value_factor;
          break;
        }
        out.status = fo.status;
        if (out.attempts >= policy.max_attempts) break;
        if (policy.charge_retries) {
          // A retry that the budget cannot cover is not taken: the entry
          // keeps its failure status and the ledger stays exactly spent.
          if (remaining() == 0) break;
          charge(1);
        }
        backoff_total_s_ += backoff.next_delay_s();
        ++out.attempts;
      }
    }
  }
  record(pool_index, out);
  if (checkpoint != nullptr && !replayed) {
    journaled.pool_index = pool_index;
    journaled.status = out.status;
    journaled.value = out.status == sim::RunStatus::kOk ? out.value : 0.0;
    journaled.attempts = out.attempts;
    journaled.budget_used = runs_used_;
    journaled.cost_exec_s = cost_exec_s_;
    journaled.cost_comp_ch = cost_comp_ch_;
    if (faults_enabled_) journaled.fault_rng_state = fault_rng_.state();
    checkpoint->record_measure(journaled);
  }
  if (telemetry::Telemetry* tel = problem_->telemetry) {
    tel->count("measure.requests");
    switch (out.status) {
      case sim::RunStatus::kOk: tel->count("measure.ok"); break;
      case sim::RunStatus::kFailed: tel->count("measure.failed"); break;
      case sim::RunStatus::kCensored: tel->count("measure.censored"); break;
    }
    if (out.attempts > 1) tel->count("measure.retries", out.attempts - 1);
    tel->gauge("budget.remaining", static_cast<double>(remaining()));
    // Deterministic distributions: attempts and charged units are
    // integer-valued, so count/sum/buckets are exact and independent of
    // merge order — they stay inside the byte-stability contract.
    tel->observe("measure.attempts", static_cast<double>(out.attempts));
    tel->observe("measure.charged_units",
                 static_cast<double>(runs_used_ - used_before));
    if (!replayed && out.attempts > 1) {
      // timing.* namespace: replayed sessions never re-run retries, so
      // this histogram is not part of the byte-stability contract (the
      // determinism gates strip `timing`).
      tel->observe("timing.measure.backoff_s",
                   backoff_total_s_ - backoff_before);
    }
    telemetry::TraceEvent event("measure");
    event.field("pool_index", pool_index)
        .field("status", sim::run_status_name(out.status))
        .field("attempts", out.attempts)
        .field("charged_units", runs_used_ - used_before)
        .field("charged_exec_s", cost_exec_s_ - exec_before)
        .field("budget_used", runs_used_)
        .field("budget_remaining", remaining());
    if (out.status == sim::RunStatus::kOk) event.field("value", out.value);
    tel->emit(std::move(event));
  }
  return out;
}

double Collector::measure(std::size_t pool_index) {
  const MeasureOutcome out = try_measure(pool_index);
  CEAL_EXPECT_MSG(out.status == sim::RunStatus::kOk,
                  "measurement did not produce a value (status: " +
                      std::string(sim::run_status_name(out.status)) + ")");
  return out.value;
}

bool Collector::is_measured(std::size_t pool_index) const {
  CEAL_EXPECT(pool_index < seen_.size());
  return seen_[pool_index];
}

void Collector::prefetch(std::span<const std::size_t> indices) {
  measure::MeasureBackend* backend = problem_->measure;
  if (backend == nullptr) return;
  // During journal replay the measurements are served from the record —
  // the backend never sees them, so it must not start runs for them.
  if (problem_->checkpoint != nullptr && problem_->checkpoint->replaying()) {
    return;
  }
  std::vector<std::size_t> fresh;
  fresh.reserve(indices.size());
  for (const std::size_t index : indices) {
    CEAL_EXPECT(index < seen_.size());
    if (!seen_[index]) fresh.push_back(index);
  }
  if (!fresh.empty()) backend->prefetch(fresh);
}

const std::vector<std::vector<std::size_t>>&
Collector::acquire_component_samples(std::size_t rounds, ceal::Rng& rng) {
  if (rounds == 0) return component_indices_;
  // A round is effective while at least one component pool still has
  // unused samples; requests beyond that neither draw nor charge.
  std::size_t capacity = 0;
  for (const auto& unused : component_unused_) {
    capacity = std::max(capacity, unused.size());
  }
  const std::size_t effective = std::min(rounds, capacity);
  if (effective == 0) return component_indices_;
  if (!problem_->components_are_history) charge(effective);

  const auto& samples = *problem_->component_samples;
  std::vector<std::vector<std::size_t>> drawn(samples.size());
  for (std::size_t j = 0; j < samples.size(); ++j) {
    auto& unused = component_unused_[j];
    const std::size_t take = std::min(effective, unused.size());
    for (std::size_t r = 0; r < take; ++r) {
      const std::size_t pick = rng.uniform_u64(unused.size());
      const std::size_t idx = unused[pick];
      unused[pick] = unused.back();
      unused.pop_back();
      component_indices_[j].push_back(idx);
      drawn[j].push_back(idx);
      cost_exec_s_ += samples[j].exec_s[idx];
      cost_comp_ch_ += samples[j].comp_ch[idx];
    }
  }
  if (CheckpointSession* checkpoint = problem_->checkpoint) {
    // Component draws come off the caller's rng and are recomputed on
    // resume; the record cross-checks the replayed draws (and the rng
    // stream position they imply) against the journaled session.
    json::Value payload = json::Value::object();
    payload.set("kind", json::Value::string("components"));
    payload.set("rounds",
                json::Value::number(static_cast<std::uint64_t>(effective)));
    payload.set("budget_used",
                json::Value::number(static_cast<std::uint64_t>(runs_used_)));
    payload.set("rng", rng_state_to_json(rng.state()));
    json::Value indices = json::Value::array();
    for (const auto& per_component : drawn) {
      json::Value one = json::Value::array();
      for (const std::size_t idx : per_component) {
        one.push(json::Value::number(static_cast<std::uint64_t>(idx)));
      }
      indices.push(std::move(one));
    }
    payload.set("drawn", std::move(indices));
    checkpoint->decision(std::move(payload));
  }
  if (telemetry::Telemetry* tel = problem_->telemetry) {
    tel->count("components.rounds", effective);
    telemetry::TraceEvent event("components");
    event.field("rounds_requested", rounds)
        .field("rounds_effective", effective)
        .field("charged", !problem_->components_are_history)
        .field("budget_used", runs_used_)
        .field("budget_remaining", remaining());
    std::vector<std::size_t> per_component(component_indices_.size());
    for (std::size_t j = 0; j < component_indices_.size(); ++j) {
      per_component[j] = component_indices_[j].size();
    }
    event.field("samples_per_component",
                std::span<const std::size_t>(per_component));
    tel->emit(std::move(event));
  }
  return component_indices_;
}

const std::vector<std::vector<std::size_t>>&
Collector::all_component_samples() {
  CEAL_EXPECT_MSG(problem_->components_are_history,
                  "free component samples require history mode");
  const auto& samples = *problem_->component_samples;
  for (std::size_t j = 0; j < samples.size(); ++j) {
    component_indices_[j].clear();
    component_indices_[j].resize(samples[j].size());
    for (std::size_t i = 0; i < samples[j].size(); ++i) {
      component_indices_[j][i] = i;
    }
    component_unused_[j].clear();
  }
  return component_indices_;
}

}  // namespace ceal::tuner
