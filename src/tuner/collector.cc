#include "tuner/collector.h"

#include <algorithm>

#include "core/error.h"

namespace ceal::tuner {

Collector::Collector(const TuningProblem& problem, std::size_t budget_runs)
    : problem_(&problem), budget_(budget_runs) {
  CEAL_EXPECT(problem.workload != nullptr);
  CEAL_EXPECT(problem.pool != nullptr);
  CEAL_EXPECT(problem.component_samples != nullptr);
  CEAL_EXPECT(budget_runs >= 1);
  seen_.assign(problem.pool->size(), false);

  const std::size_t n_components = problem.component_samples->size();
  component_indices_.resize(n_components);
  component_unused_.resize(n_components);
  for (std::size_t j = 0; j < n_components; ++j) {
    const std::size_t n = (*problem.component_samples)[j].size();
    component_unused_[j].resize(n);
    for (std::size_t i = 0; i < n; ++i) component_unused_[j][i] = i;
  }
}

void Collector::charge(std::size_t units) {
  CEAL_EXPECT_MSG(runs_used_ + units <= budget_,
                  "data-collection budget exhausted");
  runs_used_ += units;
}

double Collector::measure(std::size_t pool_index) {
  const MeasuredPool& pool = *problem_->pool;
  CEAL_EXPECT(pool_index < pool.size());
  const double value = pool.measured(problem_->objective)[pool_index];
  if (!seen_[pool_index]) {
    charge(1);
    seen_[pool_index] = true;
    measured_.push_back(pool_index);
    values_.push_back(value);
    cost_exec_s_ += pool.exec_s[pool_index];
    cost_comp_ch_ += pool.comp_ch[pool_index];
  }
  return value;
}

bool Collector::is_measured(std::size_t pool_index) const {
  CEAL_EXPECT(pool_index < seen_.size());
  return seen_[pool_index];
}

const std::vector<std::vector<std::size_t>>&
Collector::acquire_component_samples(std::size_t rounds, ceal::Rng& rng) {
  if (rounds == 0) return component_indices_;
  if (!problem_->components_are_history) charge(rounds);

  const auto& samples = *problem_->component_samples;
  for (std::size_t j = 0; j < samples.size(); ++j) {
    auto& unused = component_unused_[j];
    const std::size_t take = std::min(rounds, unused.size());
    for (std::size_t r = 0; r < take; ++r) {
      const std::size_t pick = rng.uniform_u64(unused.size());
      const std::size_t idx = unused[pick];
      unused[pick] = unused.back();
      unused.pop_back();
      component_indices_[j].push_back(idx);
      cost_exec_s_ += samples[j].exec_s[idx];
      cost_comp_ch_ += samples[j].comp_ch[idx];
    }
  }
  return component_indices_;
}

const std::vector<std::vector<std::size_t>>&
Collector::all_component_samples() {
  CEAL_EXPECT_MSG(problem_->components_are_history,
                  "free component samples require history mode");
  const auto& samples = *problem_->component_samples;
  for (std::size_t j = 0; j < samples.size(); ++j) {
    component_indices_[j].clear();
    component_indices_[j].resize(samples[j].size());
    for (std::size_t i = 0; i < samples[j].size(); ++i) {
      component_indices_[j][i] = i;
    }
    component_unused_[j].clear();
  }
  return component_indices_;
}

}  // namespace ceal::tuner
