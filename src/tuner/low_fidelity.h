// Phase 1 of the bootstrapping method (§4): component performance models
// plus the analytical coupling model that combines them into the
// low-fidelity workflow model M_L.
//
// Each component model is a boosted-tree regressor over the component's
// own (small) configuration space, trained on solo-run measurements. The
// combination function follows the objective:
//   execution time  -> Score_e(c) = max_j t_e(c_j)   (Eqn. 1)
//   computer  time  -> Score_c(c) = sum_j t_c(c_j)   (Eqn. 2)
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "tuner/measured_pool.h"
#include "tuner/objective.h"
#include "tuner/pool_features.h"
#include "tuner/surrogate.h"

namespace ceal::tuner {

/// One trained performance model per workflow component.
class ComponentModelSet {
 public:
  /// Trains a model per component for `objective`, using the component
  /// samples selected by `sample_indices` (one index list per component;
  /// indices address the ComponentSamples arrays). Every component needs
  /// at least one sample. `gbt` configures the per-component boosted
  /// trees (TuningProblem::surrogate_gbt).
  ComponentModelSet(
      const sim::InSituWorkflow& workflow, Objective objective,
      const std::vector<ComponentSamples>& samples,
      const std::vector<std::vector<std::size_t>>& sample_indices,
      ceal::Rng& rng,
      const ml::GbtParams& gbt = ml::GradientBoostedTrees::surrogate_defaults());

  std::size_t component_count() const { return models_.size(); }

  /// Predicted solo objective value of component j at its local
  /// configuration.
  double predict(std::size_t j, const config::Configuration& component_config)
      const;

  /// Batch predictions of component j over its cached slice matrix.
  std::vector<double> predict_many(std::size_t j,
                                   const ml::FeatureMatrix& rows) const;

 private:
  const sim::InSituWorkflow* workflow_;
  std::vector<Surrogate> models_;
};

/// The analytical coupling model over component predictions: the
/// low-fidelity model M_L used to score (rank) configurations.
class LowFidelityModel {
 public:
  LowFidelityModel(const sim::InSituWorkflow& workflow, Objective objective,
                   std::shared_ptr<const ComponentModelSet> components);

  /// Score of a joint configuration (lower is better). Only meaningful
  /// for ranking, not as a time prediction (§4).
  double score(const config::Configuration& joint) const;

  /// Scores for a batch of joint configurations.
  std::vector<double> score_many(
      std::span<const config::Configuration> joints) const;

  /// Scores for the whole pool from its cached per-component feature
  /// matrices; bitwise equal to score() per row, but featurizes and
  /// slices nothing.
  std::vector<double> score_many(const PoolFeatures& pool) const;

 private:
  const sim::InSituWorkflow* workflow_;
  Objective objective_;
  std::shared_ptr<const ComponentModelSet> components_;
};

}  // namespace ceal::tuner
