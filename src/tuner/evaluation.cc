#include "tuner/evaluation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/error.h"
#include "core/stats.h"
#include "core/telemetry.h"
#include "ml/metrics.h"

namespace ceal::tuner {

namespace {

struct RepOutcome {
  double norm_perf = 0.0;
  std::array<double, kRecallDepth> recall{};
  double mdape_all = 0.0;
  double mdape_top2 = 0.0;
  double cost_exec_s = 0.0;
  double cost_comp_ch = 0.0;
  double runs_used = 0.0;
  double improvement = 0.0;
};

}  // namespace

EvalSummary evaluate(const TuningProblem& problem, const AutoTuner& algorithm,
                     std::size_t budget, std::size_t replications,
                     std::uint64_t seed, ceal::ThreadPool* pool) {
  CEAL_EXPECT(replications >= 1);
  CEAL_EXPECT(problem.workload != nullptr && problem.pool != nullptr);

  const auto& workflow = problem.workload->workflow;
  const auto& measured = problem.pool->measured(problem.objective);
  const auto& truth = problem.pool->truth(problem.objective);
  const double best_truth =
      truth[problem.pool->best_truth_index(problem.objective)];

  const config::Configuration& expert =
      problem.objective == Objective::kExecTime
          ? problem.workload->expert_exec
          : problem.workload->expert_comp;
  const double expert_truth =
      metric(workflow.expected(expert), problem.objective);

  // Indices of the top-2% pool configurations by measurement, for the
  // MdAPE split of Fig. 6.
  const std::size_t top2_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(0.02 * static_cast<double>(measured.size()))));
  const auto top2 = ml::top_indices(measured, top2_count);

  // Replications with telemetry attached: each replication runs against
  // its own child Telemetry (backed by a BufferTraceSink when the parent
  // traces), so concurrent tuners never interleave events. The children
  // are merged into the parent in replication order afterwards, which
  // re-stamps sequence numbers and reproduces the exact event stream of
  // a serial run — stripped traces compare byte-identical
  // (tests/tuner/test_trace.cc). The serial path uses children too:
  // every replication's causal spans then draw ids from the same
  // strand-indexed namespaces (Telemetry::adopt_trace), so the span tree
  // is byte-identical across --threads 1 vs N, not just event-order
  // identical.
  const bool child_tracing = problem.telemetry != nullptr;
  telemetry::ScopedCausalSpan eval_span(problem.telemetry, "evaluate");
  std::vector<std::unique_ptr<telemetry::BufferTraceSink>> buffers;
  std::vector<std::unique_ptr<telemetry::Telemetry>> children;
  std::vector<TuningProblem> rep_problems;
  if (child_tracing) {
    const bool tracing = problem.telemetry->tracing();
    buffers.reserve(replications);
    children.reserve(replications);
    rep_problems.assign(replications, problem);
    for (std::size_t rep = 0; rep < replications; ++rep) {
      buffers.push_back(std::make_unique<telemetry::BufferTraceSink>());
      children.push_back(std::make_unique<telemetry::Telemetry>(
          tracing ? buffers.back().get() : nullptr));
      children.back()->adopt_trace(eval_span.context(), rep + 1);
      rep_problems[rep].telemetry = children[rep].get();
    }
  }

  std::vector<RepOutcome> outcomes(replications);
  const auto run_one = [&](std::size_t rep) {
    const TuningProblem& rep_problem =
        child_tracing ? rep_problems[rep] : problem;
    telemetry::Telemetry* tel = rep_problem.telemetry;
    if (tel != nullptr) tel->count("evaluate.replications");
    // The unit a ThreadPool would schedule; emitted in serial runs too
    // so the span tree does not depend on the execution mode.
    telemetry::ScopedCausalSpan task_span(tel, "pool.task");
    telemetry::ScopedCausalSpan rep_span(tel, "evaluate.replication");
    ceal::Rng rng(seed * 0x9e3779b97f4a7c15ULL + rep * 0xda942042e4dd58b5ULL +
                  1);
    const TuneResult result = algorithm.tune(rep_problem, budget, rng);

    RepOutcome& out = outcomes[rep];
    out.norm_perf = truth[result.best_predicted_index] / best_truth;
    for (std::size_t n = 1; n <= kRecallDepth; ++n) {
      out.recall[n - 1] =
          ml::recall_score_percent(n, result.model_scores, measured);
    }
    out.mdape_all = ceal::mdape_percent(measured, result.model_scores);
    std::vector<double> top_actual(top2.size()), top_pred(top2.size());
    for (std::size_t t = 0; t < top2.size(); ++t) {
      top_actual[t] = measured[top2[t]];
      top_pred[t] = result.model_scores[top2[t]];
    }
    out.mdape_top2 = ceal::mdape_percent(top_actual, top_pred);
    out.cost_exec_s = result.cost_exec_s;
    out.cost_comp_ch = result.cost_comp_ch;
    out.runs_used = static_cast<double>(result.runs_used);
    out.improvement = expert_truth - truth[result.best_predicted_index];
  };

  if (pool != nullptr) {
    pool->parallel_for(0, replications, run_one);
  } else {
    for (std::size_t rep = 0; rep < replications; ++rep) run_one(rep);
  }
  if (child_tracing) {
    for (std::size_t rep = 0; rep < replications; ++rep) {
      problem.telemetry->merge(*children[rep], buffers[rep]->events());
    }
  }

  EvalSummary summary;
  summary.algorithm = algorithm.name();
  summary.workload = workflow.name();
  summary.objective = problem.objective;
  summary.budget = budget;
  summary.replications = replications;

  std::vector<double> norms(replications);
  for (std::size_t r = 0; r < replications; ++r) {
    const RepOutcome& o = outcomes[r];
    norms[r] = o.norm_perf;
    summary.mean_norm_perf += o.norm_perf;
    for (std::size_t n = 0; n < kRecallDepth; ++n) {
      summary.mean_recall[n] += o.recall[n];
    }
    summary.mean_mdape_all += o.mdape_all;
    summary.mean_mdape_top2 += o.mdape_top2;
    summary.mean_cost_exec_s += o.cost_exec_s;
    summary.mean_cost_comp_ch += o.cost_comp_ch;
    summary.mean_runs_used += o.runs_used;
    summary.mean_improvement += o.improvement;
    if (o.improvement > 0.0) summary.frac_beat_expert += 1.0;
  }
  const double inv = 1.0 / static_cast<double>(replications);
  summary.mean_norm_perf *= inv;
  for (auto& r : summary.mean_recall) r *= inv;
  summary.mean_mdape_all *= inv;
  summary.mean_mdape_top2 *= inv;
  summary.mean_cost_exec_s *= inv;
  summary.mean_cost_comp_ch *= inv;
  summary.mean_runs_used *= inv;
  summary.mean_improvement *= inv;
  summary.frac_beat_expert *= inv;
  summary.median_norm_perf = ceal::median(norms);

  const double mean_cost = problem.objective == Objective::kExecTime
                               ? summary.mean_cost_exec_s
                               : summary.mean_cost_comp_ch;
  summary.least_uses = summary.mean_improvement > 0.0
                           ? mean_cost / summary.mean_improvement
                           : std::numeric_limits<double>::infinity();
  return summary;
}

}  // namespace ceal::tuner
