#include "tuner/ceal.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/error.h"
#include "core/stats.h"
#include "core/telemetry.h"
#include "ml/metrics.h"
#include "tuner/checkpoint.h"
#include "tuner/collector.h"
#include "tuner/low_fidelity.h"
#include "tuner/pool_scorer.h"
#include "tuner/stepper.h"
#include "tuner/surrogate.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

namespace {

std::size_t rounded_fraction(double fraction, std::size_t total) {
  return static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(total)));
}

}  // namespace

Ceal::Ceal(CealParams params) : params_(params) {
  CEAL_EXPECT(params_.iterations >= 1);
  CEAL_EXPECT(params_.m0_fraction >= 0.0 && params_.m0_fraction < 1.0);
  CEAL_EXPECT(params_.mR_fraction >= 0.0 && params_.mR_fraction < 1.0);
}

namespace {

// Algorithm 1 sliced at its natural boundaries: phase 1 (component
// models + low-fidelity scoring + first queue) as one step, then one
// refinement iteration per step, then the final ensemble ranking.
class CealStepper final : public TunerStepper {
 public:
  CealStepper(const Ceal& algorithm, const CealParams& params,
              const TuningProblem& problem, std::size_t budget_runs,
              ceal::Rng& rng)
      : TunerStepper(problem, budget_runs, rng),
        params_(params),
        collector_(problem_, budget_runs, rng_),
        // Every model evaluation below scores the same fixed pool. The
        // scorer featurizes it (joint + per-component slices) exactly
        // once in the default cached mode, or streams fixed-size blocks
        // per scoring pass when the problem opts into bounded memory
        // (pool_chunk_rows > 0).
        pool_scorer_(problem_.workload->workflow, problem_.pool->configs,
                     problem_.pool_chunk_rows, problem_.telemetry),
        high_fidelity_(problem_.surrogate_gbt) {  // M_H (line 12)
    emit_tune_start(problem_, algorithm, budget_);
  }

  TunerProgress progress() const override {
    TunerProgress progress = collector_progress(collector_);
    progress.model = using_high_fidelity_ ? "high" : "low";
    progress.has_recalls = has_recalls_;
    progress.recall_low = last_recall_low_;
    progress.recall_high = last_recall_high_;
    return progress;
  }

 private:
  enum class Phase { kPhase1, kLoop, kFinal };

  void do_step() override {
    telemetry::Telemetry* tel = problem_.telemetry;
    const std::size_t m = budget_;
    if (phase_ == Phase::kPhase1) {
      const auto& workflow = problem_.workload->workflow;
      // ---- Phase 1: low-fidelity model via component combination (lines
      // 1-6). Historical samples are free; otherwise m_R is charged.
      std::size_t m_r = 0;
      const std::vector<std::vector<std::size_t>>* component_indices =
          nullptr;
      if (problem_.components_are_history) {
        component_indices = &collector_.all_component_samples();
      } else {
        m_r = std::clamp<std::size_t>(
            rounded_fraction(params_.mR_fraction, m), 1, m - 2);
        component_indices = &collector_.acquire_component_samples(m_r, *rng_);
      }
      telemetry::ScopedCausalSpan components_span(tel, "components.fit");
      auto components = std::make_shared<const ComponentModelSet>(
          workflow, problem_.objective, *problem_.component_samples,
          *component_indices, *rng_, problem_.surrogate_gbt);
      const double components_fit_s = components_span.stop();
      const LowFidelityModel low_fidelity(workflow, problem_.objective,
                                          components);
      telemetry::ScopedCausalSpan low_score_span(tel, "low_fidelity.score");
      low_scores_ = pool_scorer_.low_fidelity_scores(low_fidelity);
      const double low_score_s = low_score_span.stop();

      // ---- Phase 2 set-up: high-fidelity model via dynamic ensemble
      // active learning (lines 7-28).
      m0_ = std::max<std::size_t>(
          2, rounded_fraction(params_.m0_fraction, m));
      if (m0_ % 2 == 1) ++m0_;            // keep m0/2 integral
      m0_ = std::min(m0_, m - m_r);       // never exceed the run budget
      m0_used_ = m0_ / 2;                 // m0' in Alg. 1
      // Alg. 1 line 8 sizes batches as (m - m0 - m_R)/I; we additionally
      // keep batches at >= 3 so the top-1/2/3 recalls of the switch
      // detector carry signal (iterations simply end sooner when the
      // budget runs dry).
      m_b_ = std::max<std::size_t>(
          3, (m - std::min(m, m0_ + m_r)) / params_.iterations);

      if (tel != nullptr) {
        telemetry::TraceEvent event("ceal.phase1");
        event.field("budget", m)
            .field("m_r", m_r)
            .field("m0", m0_)
            .field("m_b", m_b_)
            .field("iterations", params_.iterations)
            .field("history", problem_.components_are_history)
            .timing("components_fit_s", components_fit_s)
            .timing("low_score_s", low_score_s);
        tel->emit(std::move(event));
      }

      // Line 7: m0/2 random samples; lines 9-10: top m_B by the
      // low-fidelity model.
      c_meas_ = random_unmeasured(collector_, m0_used_, *rng_);
      {
        const auto top = top_unmeasured(low_scores_, collector_, m_b_);
        c_meas_.insert(c_meas_.end(), top.begin(), top.end());
      }
      // Scores that queued the pending batch; fault top-up re-selects
      // from them so each iteration still gains its intended number of
      // usable measurements.
      queue_scores_ = low_scores_;
      i_ = 1;
      phase_ = Phase::kLoop;
      return;
    }
    if (phase_ == Phase::kLoop) {
      while (i_ <= params_.iterations) {
        const std::size_t i = i_;
        // Line 14: run the workflow for this iteration's batch. Only
        // successful measurements count towards the batch; failed
        // attempts are topped up from the queueing model's ranking.
        const std::size_t req_start = collector_.measured_indices().size();
        const std::size_t batch_start = collector_.ok_indices().size();
        measure_batch(collector_, c_meas_, queue_scores_, c_meas_.size());
        c_meas_.clear();
        const auto& all_indices = collector_.ok_indices();
        const auto& all_values = collector_.ok_values();
        const std::size_t batch_len = all_indices.size() - batch_start;

        // Per-iteration trace state, filled in as the iteration unfolds
        // and emitted exactly once on every path out of the loop body.
        bool detection_ran = false, switched_now = false;
        double s_high = 0.0, s_low = 0.0, detect_s = 0.0, predict_s = 0.0;
        std::size_t topup_injected = 0;
        const double fit_total_before =
            tel != nullptr ? tel->span_stats("surrogate.fit").total_s : 0.0;
        const auto emit_iteration = [&] {
          if (tel == nullptr) return;
          tel->count("ceal.iterations");
          telemetry::TraceEvent event("ceal.iteration");
          const auto& requested = collector_.measured_indices();
          event.field("iteration", i)
              .field("batch", std::span<const std::size_t>(
                                  requested.data() + req_start,
                                  requested.size() - req_start))
              .field("batch_ok", batch_len)
              .field("batch_values",
                     std::span<const double>(all_values.data() + batch_start,
                                             batch_len))
              .field("model", using_high_fidelity_ ? "high" : "low")
              .field("switched", switched_now)
              .field("topup", topup_injected)
              .field("m_b", m_b_)
              .field("budget_used", collector_.runs_used())
              .field("budget_remaining", collector_.remaining());
          if (detection_ran) {
            event.field("recall_low", s_low).field("recall_high", s_high);
          }
          event
              .timing("fit_s", tel->span_stats("surrogate.fit").total_s -
                                   fit_total_before)
              .timing("detect_s", detect_s)
              .timing("predict_s", predict_s);
          tel->emit(std::move(event));
        };

        if (batch_len == 0) {
          if (collector_.remaining() == 0 ||
              !problem_.measurement.faults.enabled()) {
            emit_iteration();
            break;  // budget spent (or, fault-free, the pool ran dry)
          }
          // Every attempt this iteration failed; re-queue from the
          // low-fidelity ranking and spend the next iteration retrying.
          queue_scores_ = low_scores_;
          c_meas_ = top_unmeasured(low_scores_, collector_, m_b_);
          emit_iteration();
          if (c_meas_.empty()) break;
          ++i_;
          return;  // one iteration per step
        }

        // Lines 16-24: model-switch detection, while still evaluating
        // with the low-fidelity model and once M_H has been trained at
        // least once. Batches smaller than 3 carry no ranking signal
        // (the top-1/2/3 recalls of any two models tie trivially), so
        // detection waits for a meaningful batch.
        if (params_.enable_switch_detection && !using_high_fidelity_ &&
            high_fidelity_.is_fitted() && batch_len >= 3) {
          telemetry::ScopedCausalSpan detect_span(tel, "ceal.switch_detection");
          detection_ran = true;
          std::vector<double> batch_high(batch_len), batch_low(batch_len),
              batch_meas(batch_len);
          for (std::size_t b = 0; b < batch_len; ++b) {
            const std::size_t idx = all_indices[batch_start + b];
            batch_high[b] =
                high_fidelity_.predict_features(pool_scorer_.joint_row(idx));
            batch_low[b] = low_scores_[idx];
            batch_meas[b] = all_values[batch_start + b];
          }
          s_high = ml::recall_sum_top123(batch_high, batch_meas);
          s_low = ml::recall_sum_top123(batch_low, batch_meas);
          has_recalls_ = true;  // surfaced live via progress()
          last_recall_low_ = s_low;
          last_recall_high_ = s_high;

          // Line 20: bias check — M_H's three favourite measured configs
          // must fall within the better half of all measurements,
          // otherwise top up with random samples.
          std::vector<double> meas_high(all_indices.size());
          for (std::size_t s = 0; s < all_indices.size(); ++s) {
            meas_high[s] = high_fidelity_.predict_features(
                pool_scorer_.joint_row(all_indices[s]));
          }
          const std::size_t top_n =
              std::min<std::size_t>(3, meas_high.size());
          const std::size_t half =
              std::max<std::size_t>(top_n, all_indices.size() / 2);
          auto fav = ml::top_indices(meas_high, top_n);
          auto good = ml::top_indices(all_values, half);
          std::sort(fav.begin(), fav.end());
          std::sort(good.begin(), good.end());
          std::vector<std::size_t> common;
          std::set_intersection(fav.begin(), fav.end(), good.begin(),
                                good.end(), std::back_inserter(common));
          if (params_.enable_random_topup && common.size() < top_n &&
              m0_used_ < m0_) {
            const std::size_t extra = (m0_ - m0_used_) / 2;
            if (extra > 0) {
              const auto randoms = random_unmeasured(collector_, extra, *rng_);
              c_meas_.insert(c_meas_.end(), randoms.begin(), randoms.end());
              m0_used_ += extra;  // line 22
              topup_injected = randoms.size();
              // The top-up draws come off the tuner rng, so journal the
              // stream position alongside the decision: a resumed
              // session must land on exactly the same random injections.
              if (problem_.checkpoint != nullptr) {
                checkpoint_decision(
                    problem_, "ceal.topup",
                    {{"iteration",
                      json::Value::number(static_cast<std::uint64_t>(i))},
                     {"injected",
                      json::Value::number(
                          static_cast<std::uint64_t>(randoms.size()))},
                     {"m0_used", json::Value::number(
                                     static_cast<std::uint64_t>(m0_used_))},
                     {"rng", rng_state_to_json(rng_->state())}});
              }
              if (tel != nullptr) {
                tel->count("ceal.topups");
                telemetry::TraceEvent event("ceal.topup");
                event.field("iteration", i)
                    .field("injected", randoms.size())
                    .field("m0_used", m0_used_);
                tel->emit(std::move(event));
              }
            }
          }

          if (s_high >= s_low) {
            using_high_fidelity_ = true;  // line 24: M <- M_H
            switched_now = true;
            if (i < params_.iterations) {
              m_b_ += (m0_ - m0_used_) / (params_.iterations - i);
            }
            if (problem_.checkpoint != nullptr) {
              checkpoint_decision(
                  problem_, "ceal.switch",
                  {{"iteration",
                    json::Value::number(static_cast<std::uint64_t>(i))},
                   {"m_b",
                    json::Value::number(static_cast<std::uint64_t>(m_b_))}});
            }
            if (tel != nullptr) {
              tel->count("ceal.switched");
              telemetry::TraceEvent event("ceal.switch");
              event.field("iteration", i)
                  .field("recall_low", s_low)
                  .field("recall_high", s_high)
                  .field("m_b", m_b_);
              tel->emit(std::move(event));
            }
          }
          detect_s = detect_span.stop();
        }

        // Line 25: train/refine M_H on all measured data.
        fit_on_measured(high_fidelity_, collector_, *rng_);

        if (collector_.remaining() == 0) {
          emit_iteration();
          break;
        }

        // Lines 26-27: evaluate the pool with M and queue the next batch.
        if (using_high_fidelity_) {
          telemetry::ScopedCausalSpan predict_span(tel, "surrogate.predict");
          auto high_scores = pool_scorer_.surrogate_scores(high_fidelity_);
          predict_s = predict_span.stop();
          const auto top = top_unmeasured(high_scores, collector_, m_b_);
          c_meas_.insert(c_meas_.end(), top.begin(), top.end());
          queue_scores_ = std::move(high_scores);
        } else {
          const auto top = top_unmeasured(low_scores_, collector_, m_b_);
          c_meas_.insert(c_meas_.end(), top.begin(), top.end());
          queue_scores_ = low_scores_;
        }
        emit_iteration();
        ++i_;
        return;  // one iteration per step
      }
      phase_ = Phase::kFinal;
    }

    // Line 28 returns M_H; the searcher, per Fig. 3, consumes the
    // *selected* model — M_H once switch detection has promoted it, the
    // low-fidelity ensemble otherwise (measured configurations always
    // score as their observations, see finalize_result).
    CEAL_ENSURE_MSG(high_fidelity_.is_fitted(),
                    "CEAL collected no workflow samples");

    // The low-fidelity output is only a ranking score (§4); calibrate it
    // to the measurement scale with the median measured/score ratio so it
    // can stand next to real observations and M_H predictions.
    std::vector<double> calibrated_low = low_scores_;
    {
      const auto& indices = collector_.ok_indices();
      const auto& values = collector_.ok_values();
      std::vector<double> ratios;
      ratios.reserve(indices.size());
      for (std::size_t s = 0; s < indices.size(); ++s) {
        if (calibrated_low[indices[s]] > 0.0) {
          ratios.push_back(values[s] / calibrated_low[indices[s]]);
        }
      }
      if (!ratios.empty()) {
        const double factor = ceal::median(ratios);
        for (double& v : calibrated_low) v *= factor;
      }
    }

    // Final ensemble ranking: a configuration only ranks highly when
    // *both* models believe in it (element-wise max of lower-is-better
    // scores). Each model alone suffers a winner's curse over a
    // 2000-entry pool — its single most optimistic extrapolation error
    // wins the argmin; the conjunction suppresses errors that are not
    // shared by both models.
    telemetry::ScopedCausalSpan final_span(tel, "surrogate.predict");
    std::vector<double> scores = pool_scorer_.surrogate_scores(high_fidelity_);
    final_span.stop();
    if (params_.ensemble_final) {
      for (std::size_t i = 0; i < scores.size(); ++i) {
        scores[i] = std::max(scores[i], calibrated_low[i]);
      }
    }
    finish(finalize_result(collector_, std::move(scores)));
  }

  CealParams params_;
  Collector collector_;
  const PoolScorer pool_scorer_;
  Surrogate high_fidelity_;
  std::vector<double> low_scores_;
  std::vector<double> queue_scores_;
  std::vector<std::size_t> c_meas_;
  bool using_high_fidelity_ = false;  // M = M_L (line 11)
  bool has_recalls_ = false;          // a detection pass has run
  double last_recall_low_ = 0.0;      // last s_low / s_high (line 17)
  double last_recall_high_ = 0.0;
  std::size_t m0_ = 0;
  std::size_t m0_used_ = 0;
  std::size_t m_b_ = 0;
  Phase phase_ = Phase::kPhase1;
  std::size_t i_ = 1;
};

}  // namespace

std::unique_ptr<TunerStepper> Ceal::make_stepper(const TuningProblem& problem,
                                                 std::size_t budget_runs,
                                                 ceal::Rng& rng) const {
  const CealParams params =
      auto_params_ ? (problem.components_are_history
                          ? CealParams::with_history()
                          : CealParams::no_history())
                   : params_;
  return std::make_unique<CealStepper>(*this, params, problem, budget_runs,
                                       rng);
}

}  // namespace ceal::tuner
