// Resumable, step-wise execution of a tuning session.
//
// Every auto-tuning algorithm is implemented as a TunerStepper: a
// cooperative state machine whose step() runs one bounded slice of the
// session (one warm-up batch, one refinement iteration, one
// finalisation pass) and then yields. AutoTuner::tune simply drives a
// stepper to completion, so the one-shot API is a thin loop over this
// one — byte-identical results, identical rng/telemetry/checkpoint
// sequences.
//
// The step-wise form exists for the serving layer (src/serve): a daemon
// multiplexing hundreds of concurrent sessions steps each one in turn
// on a shared thread pool instead of parking a thread per session for
// its whole lifetime. A stepper never blocks between steps and owns no
// thread; whoever holds it decides when (and on which thread) the next
// slice runs. Steps of one stepper must be serialised by the caller —
// the object itself is not thread-safe.
//
// Lifetimes: the stepper copies the TuningProblem struct but not the
// objects it points to (workload, pool, component samples, telemetry,
// checkpoint) — those must outlive the stepper, as must the Rng.
#pragma once

#include "tuner/autotuner.h"
#include "tuner/measured_pool.h"

namespace ceal::tuner {

class CheckpointSession;

/// Live progress snapshot of a running session, read between steps by
/// the serving layer's `server.metrics` exposition (docs/SERVING.md).
/// Every field is a deterministic function of the steps taken so far.
struct TunerProgress {
  std::size_t budget_used = 0;
  std::size_t budget_remaining = 0;
  /// True once at least one measurement succeeded; best_value is the
  /// lowest objective value measured so far.
  bool has_best = false;
  double best_value = 0.0;
  /// Surrogate phase for model-switching tuners ("low" before the
  /// M_L->M_H switch, "high" after); null when the algorithm has no
  /// phase notion.
  const char* model = nullptr;
  /// True once a switch-detection pass ran; the recalls are then the
  /// last recall@top-k sums the detector computed (paper fig11, live).
  bool has_recalls = false;
  double recall_low = 0.0;
  double recall_high = 0.0;
};

class TunerStepper {
 public:
  TunerStepper(const TuningProblem& problem, std::size_t budget_runs,
               ceal::Rng& rng)
      : problem_(problem), budget_(budget_runs), rng_(&rng) {}
  virtual ~TunerStepper() = default;

  TunerStepper(const TunerStepper&) = delete;
  TunerStepper& operator=(const TunerStepper&) = delete;

  /// True once the session has produced its TuneResult; step() is a
  /// no-op from then on.
  bool done() const { return done_; }

  /// Runs one slice of the session. Returns true while more steps
  /// remain, false once the session is finished (including the call
  /// that finished it). Exceptions from the tuning logic propagate —
  /// the stepper is then in an unspecified state and must be discarded.
  bool step();

  /// Total step() calls that performed work.
  std::size_t steps_taken() const { return steps_taken_; }

  /// The finished session's result; requires done().
  const TuneResult& result() const;
  TuneResult take_result();

  /// The problem copy this session runs against (checkpoint attached
  /// when the stepper was made through the checkpointable overload).
  const TuningProblem& problem() const { return problem_; }
  std::size_t budget_runs() const { return budget_; }

  /// Snapshot of the session's live progress. Cheap (O(1)); callers
  /// must serialise it with step() like every other member. The base
  /// returns an empty snapshot; every in-tree tuner overrides it.
  virtual TunerProgress progress() const { return {}; }

 protected:
  /// One slice of algorithm work. Implementations call finish() from
  /// the slice that completes the session.
  virtual void do_step() = 0;

  /// Stores the result, marks the session done, and writes the
  /// checkpoint's terminal record when one is attached.
  void finish(TuneResult result);

  TuningProblem problem_;
  std::size_t budget_;
  ceal::Rng* rng_;

 private:
  friend class AutoTuner;

  bool done_ = false;
  std::size_t steps_taken_ = 0;
  TuneResult result_;
  /// Set by AutoTuner::make_stepper's checkpointable overload: the
  /// session that must receive finish_session() when the run completes.
  CheckpointSession* finishing_checkpoint_ = nullptr;
};

}  // namespace ceal::tuner
