// Surrogate model over joint workflow configurations: a boosted-tree
// regressor plus the configuration->feature encoding.
#pragma once

#include <span>
#include <vector>

#include "config/config_space.h"
#include "ml/gbt.h"

namespace ceal::tuner {

class Surrogate {
 public:
  /// `log_targets`: train on log(y) and exponentiate predictions.
  /// Execution/computer times span several orders of magnitude across a
  /// configuration space; the log transform makes that multiplicative
  /// structure additive, so a handful of samples generalises far better.
  explicit Surrogate(
      ml::GbtParams params = ml::GradientBoostedTrees::surrogate_defaults(),
      bool log_targets = true);

  /// Retrains from scratch on the given configurations and objective
  /// values. Requires equal, non-zero sizes.
  void fit(const config::ConfigSpace& space,
           std::span<const config::Configuration> configs,
           std::span<const double> targets, ceal::Rng& rng);

  bool is_fitted() const { return model_.is_fitted(); }

  double predict(const config::ConfigSpace& space,
                 const config::Configuration& c) const;

  /// Prediction from an already-featurized row (one row of a cached
  /// pool matrix). Equals predict() on the configuration the row was
  /// featurized from.
  double predict_features(std::span<const double> features) const;

  /// Predictions for a batch of configurations.
  std::vector<double> predict_many(
      const config::ConfigSpace& space,
      std::span<const config::Configuration> configs) const;

  /// Batch predictions from a cached feature matrix, parallel over rows
  /// (bitwise equal to predict() per row for any worker count).
  std::vector<double> predict_many(const ml::FeatureMatrix& rows) const;

  /// Forwards a (concurrency-safe, nullable) telemetry registry to the
  /// underlying boosted-tree model, which records per-round fit spans,
  /// split-search counters, and batch-predict throughput (ml/gbt.h).
  void set_telemetry(ceal::telemetry::Telemetry* telemetry) {
    model_.set_telemetry(telemetry);
  }

 private:
  ml::GradientBoostedTrees model_;
  bool log_targets_;
};

}  // namespace ceal::tuner
