#include "tuner/pool_io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/error.h"

namespace ceal::tuner {

namespace {

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

double parse_double(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  CEAL_EXPECT_MSG(end != nullptr && end != token.c_str() && *end == '\0',
                  "malformed number in pool file: '" + token + "'");
  return v;
}

int parse_int(const std::string& token) {
  int v = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  CEAL_EXPECT_MSG(ec == std::errc{} && ptr == token.data() + token.size(),
                  "malformed integer in pool file: '" + token + "'");
  return v;
}

void write_header(std::ofstream& os, const config::ConfigSpace& space,
                  bool with_truth) {
  for (std::size_t j = 0; j < space.dimension(); ++j) {
    os << space.parameter(j).name() << ',';
  }
  os << "exec_s,comp_ch";
  if (with_truth) os << ",true_exec_s,true_comp_ch";
  os << '\n';
}

void write_row(std::ofstream& os, const config::Configuration& c,
               double exec_s, double comp_ch, const double* true_exec,
               const double* true_comp) {
  for (const int v : c) os << v << ',';
  os.precision(17);
  os << exec_s << ',' << comp_ch;
  if (true_exec != nullptr) os << ',' << *true_exec << ',' << *true_comp;
  os << '\n';
}

struct ParsedRow {
  config::Configuration config;
  double exec_s = 0.0;
  double comp_ch = 0.0;
  double true_exec_s = 0.0;
  double true_comp_ch = 0.0;
  bool has_truth = false;
};

ParsedRow parse_row(const std::vector<std::string>& cells,
                    const config::ConfigSpace& space) {
  const std::size_t d = space.dimension();
  CEAL_EXPECT_MSG(cells.size() == d + 2 || cells.size() == d + 4,
                  "pool row has wrong column count");
  ParsedRow row;
  row.config.resize(d);
  for (std::size_t j = 0; j < d; ++j) row.config[j] = parse_int(cells[j]);
  CEAL_EXPECT_MSG(space.is_valid(row.config),
                  "pool row is not a valid configuration: " +
                      config::to_string(row.config));
  row.exec_s = parse_double(cells[d]);
  row.comp_ch = parse_double(cells[d + 1]);
  CEAL_EXPECT_MSG(row.exec_s > 0.0 && row.comp_ch > 0.0,
                  "pool row has non-positive measurements");
  if (cells.size() == d + 4) {
    row.true_exec_s = parse_double(cells[d + 2]);
    row.true_comp_ch = parse_double(cells[d + 3]);
    row.has_truth = true;
  } else {
    row.true_exec_s = row.exec_s;
    row.true_comp_ch = row.comp_ch;
  }
  return row;
}

}  // namespace

void save_pool_csv(const MeasuredPool& pool,
                   const config::ConfigSpace& space,
                   const std::string& path) {
  CEAL_EXPECT(pool.size() > 0);
  const bool with_truth = pool.true_exec_s.size() == pool.size();
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  write_header(os, space, with_truth);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    write_row(os, pool.configs[i], pool.exec_s[i], pool.comp_ch[i],
              with_truth ? &pool.true_exec_s[i] : nullptr,
              with_truth ? &pool.true_comp_ch[i] : nullptr);
  }
  if (!os) throw std::runtime_error("write failure on " + path);
}

MeasuredPool load_pool_csv(const config::ConfigSpace& space,
                           const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::string line;
  CEAL_EXPECT_MSG(static_cast<bool>(std::getline(is, line)),
                  "pool file is empty");
  MeasuredPool pool;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const ParsedRow row = parse_row(split_csv(line), space);
    pool.configs.push_back(row.config);
    pool.exec_s.push_back(row.exec_s);
    pool.comp_ch.push_back(row.comp_ch);
    pool.true_exec_s.push_back(row.true_exec_s);
    pool.true_comp_ch.push_back(row.true_comp_ch);
  }
  CEAL_EXPECT_MSG(pool.size() > 0, "pool file has no rows");
  return pool;
}

void save_component_csv(const ComponentSamples& samples,
                        const config::ConfigSpace& space,
                        const std::string& path) {
  CEAL_EXPECT(samples.size() > 0);
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  write_header(os, space, /*with_truth=*/false);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    write_row(os, samples.configs[i], samples.exec_s[i], samples.comp_ch[i],
              nullptr, nullptr);
  }
  if (!os) throw std::runtime_error("write failure on " + path);
}

ComponentSamples load_component_csv(const config::ConfigSpace& space,
                                    const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::string line;
  CEAL_EXPECT_MSG(static_cast<bool>(std::getline(is, line)),
                  "component file is empty");
  ComponentSamples samples;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const ParsedRow row = parse_row(split_csv(line), space);
    samples.configs.push_back(row.config);
    samples.exec_s.push_back(row.exec_s);
    samples.comp_ch.push_back(row.comp_ch);
  }
  CEAL_EXPECT_MSG(samples.size() > 0, "component file has no rows");
  return samples;
}

}  // namespace ceal::tuner
