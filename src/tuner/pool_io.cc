#include "tuner/pool_io.h"

#include <charconv>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/atomic_file.h"
#include "core/error.h"

namespace ceal::tuner {

namespace {

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

// Loader errors follow the one-line "<path>:<lineno>: why" convention of
// trace_io.h, so a bad row in a 2000-line pool file points straight at
// itself. `where` is the already-formatted "<path>:<lineno>" prefix.

[[noreturn]] void fail_row(const std::string& where, const std::string& why) {
  throw PreconditionError(where + ": " + why);
}

double parse_double(const std::string& token, const std::string& where) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    fail_row(where, "malformed number '" + token + "'");
  }
  return v;
}

int parse_int(const std::string& token, const std::string& where) {
  int v = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail_row(where, "malformed integer '" + token + "'");
  }
  return v;
}

std::string location(const std::string& path, std::size_t lineno) {
  return path + ':' + std::to_string(lineno);
}

void write_header(std::ostream& os, const config::ConfigSpace& space,
                  bool with_truth) {
  for (std::size_t j = 0; j < space.dimension(); ++j) {
    os << space.parameter(j).name() << ',';
  }
  os << "exec_s,comp_ch";
  if (with_truth) os << ",true_exec_s,true_comp_ch";
  os << '\n';
}

void write_row(std::ostream& os, const config::Configuration& c,
               double exec_s, double comp_ch, const double* true_exec,
               const double* true_comp) {
  for (const int v : c) os << v << ',';
  os.precision(17);
  os << exec_s << ',' << comp_ch;
  if (true_exec != nullptr) os << ',' << *true_exec << ',' << *true_comp;
  os << '\n';
}

struct ParsedRow {
  config::Configuration config;
  double exec_s = 0.0;
  double comp_ch = 0.0;
  double true_exec_s = 0.0;
  double true_comp_ch = 0.0;
  bool has_truth = false;
};

ParsedRow parse_row(const std::vector<std::string>& cells,
                    const config::ConfigSpace& space,
                    const std::string& where) {
  const std::size_t d = space.dimension();
  if (cells.size() != d + 2 && cells.size() != d + 4) {
    fail_row(where, "row has " + std::to_string(cells.size()) +
                        " columns, expected " + std::to_string(d + 2) +
                        " or " + std::to_string(d + 4));
  }
  ParsedRow row;
  row.config.resize(d);
  for (std::size_t j = 0; j < d; ++j) {
    row.config[j] = parse_int(cells[j], where);
  }
  if (!space.is_valid(row.config)) {
    fail_row(where, "not a valid configuration: " +
                        config::to_string(row.config));
  }
  row.exec_s = parse_double(cells[d], where);
  row.comp_ch = parse_double(cells[d + 1], where);
  if (!(row.exec_s > 0.0 && row.comp_ch > 0.0)) {
    fail_row(where, "non-positive measurements");
  }
  if (cells.size() == d + 4) {
    row.true_exec_s = parse_double(cells[d + 2], where);
    row.true_comp_ch = parse_double(cells[d + 3], where);
    row.has_truth = true;
  } else {
    row.true_exec_s = row.exec_s;
    row.true_comp_ch = row.comp_ch;
  }
  return row;
}

}  // namespace

void save_pool_csv(const MeasuredPool& pool,
                   const config::ConfigSpace& space,
                   const std::string& path) {
  CEAL_EXPECT(pool.size() > 0);
  const bool with_truth = pool.true_exec_s.size() == pool.size();
  // Atomic replace: a crash mid-save leaves the old pool file (or none),
  // never a truncated one that a later session would half-load.
  AtomicFile file(path);
  write_header(file.stream(), space, with_truth);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    write_row(file.stream(), pool.configs[i], pool.exec_s[i], pool.comp_ch[i],
              with_truth ? &pool.true_exec_s[i] : nullptr,
              with_truth ? &pool.true_comp_ch[i] : nullptr);
  }
  file.commit();
}

MeasuredPool load_pool_csv(const config::ConfigSpace& space,
                           const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::string line;
  if (!std::getline(is, line)) {
    throw PreconditionError(location(path, 1) + ": pool file is empty");
  }
  MeasuredPool pool;
  std::size_t lineno = 1;
  // Every pool entry must be a distinct configuration: the pool doubles
  // as the test set, and a duplicated row would let one configuration
  // vote twice in the rank metrics (and desync resume fingerprints).
  // Component samples are exempt — tiny component spaces legitimately
  // repeat configurations across solo runs.
  std::map<config::Configuration, std::size_t> first_seen;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const ParsedRow row =
        parse_row(split_csv(line), space, location(path, lineno));
    const auto [it, inserted] = first_seen.emplace(row.config, lineno);
    if (!inserted) {
      fail_row(location(path, lineno),
               "duplicate configuration " + config::to_string(row.config) +
                   " (first at line " + std::to_string(it->second) + ")");
    }
    pool.configs.push_back(row.config);
    pool.exec_s.push_back(row.exec_s);
    pool.comp_ch.push_back(row.comp_ch);
    pool.true_exec_s.push_back(row.true_exec_s);
    pool.true_comp_ch.push_back(row.true_comp_ch);
  }
  if (pool.size() == 0) {
    throw PreconditionError(location(path, lineno) +
                            ": pool file has no rows");
  }
  return pool;
}

void save_component_csv(const ComponentSamples& samples,
                        const config::ConfigSpace& space,
                        const std::string& path) {
  CEAL_EXPECT(samples.size() > 0);
  AtomicFile file(path);
  write_header(file.stream(), space, /*with_truth=*/false);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    write_row(file.stream(), samples.configs[i], samples.exec_s[i],
              samples.comp_ch[i], nullptr, nullptr);
  }
  file.commit();
}

ComponentSamples load_component_csv(const config::ConfigSpace& space,
                                    const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::string line;
  if (!std::getline(is, line)) {
    throw PreconditionError(location(path, 1) + ": component file is empty");
  }
  ComponentSamples samples;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const ParsedRow row =
        parse_row(split_csv(line), space, location(path, lineno));
    samples.configs.push_back(row.config);
    samples.exec_s.push_back(row.exec_s);
    samples.comp_ch.push_back(row.comp_ch);
  }
  if (samples.size() == 0) {
    throw PreconditionError(location(path, lineno) +
                            ": component file has no rows");
  }
  return samples;
}

}  // namespace ceal::tuner
