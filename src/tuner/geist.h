// GEIST baseline (§7.3): graph-guided semi-supervised exploration
// (Thiagarajan et al., "Bootstrapping parameter space exploration for
// fast tuning", ICS'18). A k-nearest-neighbour parameter graph is built
// over the pool; measured configurations seed binary labels ("likely in
// the top 5%" vs not), label propagation spreads belief across graph
// edges, and each iteration measures the unlabeled configurations with
// the highest propagated top-probability.
#pragma once

#include <memory>
#include <vector>

#include "tuner/autotuner.h"

namespace ceal::tuner {

/// k-NN adjacency over pool configurations (min-max-normalised L2).
/// Building it is O(N^2 d); the evaluation harness shares one instance
/// across replications via TuningProblem-independent construction.
class PoolGraph {
 public:
  PoolGraph(const config::ConfigSpace& space,
            const std::vector<config::Configuration>& configs,
            std::size_t k_neighbors);

  std::size_t size() const { return neighbors_.size(); }
  const std::vector<std::size_t>& neighbors(std::size_t i) const;

 private:
  std::vector<std::vector<std::size_t>> neighbors_;
};

struct GeistParams {
  std::size_t iterations = 8;
  double init_fraction = 0.25;
  std::size_t k_neighbors = 10;
  /// Propagation mixing weight (label retention is 1 - alpha).
  double alpha = 0.85;
  std::size_t propagation_iters = 30;
  /// A measured configuration counts as "top" when its value falls in
  /// this quantile of the measurements seen so far (paper: top 5%).
  double top_quantile = 0.05;
  /// Optional pre-built graph shared across tune() calls; when null each
  /// call builds its own.
  std::shared_ptr<const PoolGraph> graph;
};

class Geist final : public AutoTuner {
 public:
  explicit Geist(GeistParams params = {});

  std::string name() const override { return "GEIST"; }

  std::unique_ptr<TunerStepper> make_stepper(const TuningProblem& problem,
                                             std::size_t budget_runs,
                                             ceal::Rng& rng) const override;

 private:
  GeistParams params_;
};

}  // namespace ceal::tuner
