// CEAL — Component-based Ensemble Active Learning (Algorithm 1).
//
// Phase 1 (white-box): train per-component models from m_R charged solo
// runs (or free historical measurements D_hist) and combine them through
// the analytical coupling model into the low-fidelity workflow model M_L.
//
// Phase 2 (black-box): bootstrap a high-fidelity boosted-tree surrogate
// M_H by measuring, per iteration, the m_B pool configurations ranked
// best by the current evaluation model M — M_L at first, switching to
// M_H once its summed top-1/2/3 recall on the fresh batch reaches M_L's
// (model-switch detection, lines 16–24). A random-sample top-up guards
// against a biased low-fidelity model (lines 20–22).
#pragma once

#include "tuner/autotuner.h"

namespace ceal::tuner {

struct CealParams {
  /// Number of refinement iterations I.
  std::size_t iterations = 8;
  /// m0 = m0_fraction * m: upper bound on random samples (rounded to an
  /// even count, minimum 2).
  double m0_fraction = 0.05;
  /// m_R = mR_fraction * m: budget for component runs; ignored (treated
  /// as 0) when historical component measurements are available. The
  /// paper sets m_R between 25% and 75% of m (§6) and shows a flat
  /// optimum across 30-80% (Fig. 13c); 50% is the middle of that range.
  double mR_fraction = 0.5;

  // --- Ablation switches (all on by default; bench_ablation_ceal). ---
  /// Lines 16-24 of Alg. 1: promote M_H once its batch recall matches
  /// M_L's. Off = keep selecting samples with the low-fidelity model.
  bool enable_switch_detection = true;
  /// Lines 20-22: inject extra random samples when M_H looks biased.
  bool enable_random_topup = true;
  /// Final ranking as the conjunction (element-wise max) of M_H and the
  /// calibrated low-fidelity scores. Off = rank by M_H alone, the strict
  /// reading of Alg. 1 line 28.
  bool ensemble_final = true;

  /// Defaults without historical measurements (§6/Fig. 13):
  /// I = 8, m0 = 5% m, m_R = 50% m.
  static CealParams no_history() { return CealParams{}; }

  /// Paper defaults with historical measurements (Fig. 13a):
  /// I = 3, m0 = 15% m, m_R = 0.
  static CealParams with_history() {
    CealParams p;
    p.iterations = 3;
    p.m0_fraction = 0.15;
    p.mR_fraction = 0.0;
    return p;
  }
};

class Ceal final : public AutoTuner {
 public:
  explicit Ceal(CealParams params);

  /// Picks no_history()/with_history() defaults per problem at tune time.
  Ceal() : params_(), auto_params_(true) {}

  std::string name() const override { return "CEAL"; }

  std::unique_ptr<TunerStepper> make_stepper(const TuningProblem& problem,
                                             std::size_t budget_runs,
                                             ceal::Rng& rng) const override;

 private:
  CealParams params_;
  bool auto_params_ = false;
};

}  // namespace ceal::tuner
