#include "tuner/surrogate.h"

#include <cmath>

#include "core/error.h"
#include "ml/dataset.h"

namespace ceal::tuner {

Surrogate::Surrogate(ml::GbtParams params, bool log_targets)
    : model_(params), log_targets_(log_targets) {}

void Surrogate::fit(const config::ConfigSpace& space,
                    std::span<const config::Configuration> configs,
                    std::span<const double> targets, ceal::Rng& rng) {
  CEAL_EXPECT(!configs.empty());
  CEAL_EXPECT(configs.size() == targets.size());
  ml::Dataset data(space.dimension());
  data.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    double y = targets[i];
    CEAL_EXPECT_MSG(std::isfinite(y),
                    "surrogate targets must be finite — failed or censored "
                    "measurements must be filtered before fitting");
    if (log_targets_) {
      CEAL_EXPECT_MSG(y > 0.0, "log-target surrogate needs positive targets");
      y = std::log(y);
    }
    data.add(space.features(configs[i]), y);
  }
  model_.fit(data, rng);
}

double Surrogate::predict(const config::ConfigSpace& space,
                          const config::Configuration& c) const {
  return predict_features(space.features(c));
}

double Surrogate::predict_features(std::span<const double> features) const {
  const double raw = model_.predict(features);
  return log_targets_ ? std::exp(raw) : raw;
}

std::vector<double> Surrogate::predict_many(
    const config::ConfigSpace& space,
    std::span<const config::Configuration> configs) const {
  std::vector<double> out(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    out[i] = predict(space, configs[i]);
  }
  return out;
}

std::vector<double> Surrogate::predict_many(
    const ml::FeatureMatrix& rows) const {
  std::vector<double> out = model_.predict_matrix(rows);
  if (log_targets_) {
    for (double& v : out) v = std::exp(v);
  }
  return out;
}

}  // namespace ceal::tuner
