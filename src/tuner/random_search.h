// RS baseline (§7.3): selects training samples by uniform random
// sampling from the pool, then trains the surrogate once.
#pragma once

#include "tuner/autotuner.h"

namespace ceal::tuner {

class RandomSearch final : public AutoTuner {
 public:
  std::string name() const override { return "RS"; }

  std::unique_ptr<TunerStepper> make_stepper(const TuningProblem& problem,
                                             std::size_t budget_runs,
                                             ceal::Rng& rng) const override;
};

}  // namespace ceal::tuner
