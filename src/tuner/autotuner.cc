#include "tuner/autotuner.h"

#include "core/error.h"
#include "core/telemetry.h"
#include "tuner/checkpoint.h"
#include "tuner/stepper.h"

namespace ceal::tuner {

bool TunerStepper::step() {
  if (done_) return false;
  ++steps_taken_;
  // Every algorithm slice runs inside one causal span, so measure /
  // surrogate / pool spans emitted below always have a tuner.step
  // ancestor in the trace tree.
  telemetry::ScopedCausalSpan span(problem_.telemetry, "tuner.step");
  do_step();
  return !done_;
}

const TuneResult& TunerStepper::result() const {
  CEAL_EXPECT_MSG(done_, "stepper result read before the session finished");
  return result_;
}

TuneResult TunerStepper::take_result() {
  CEAL_EXPECT_MSG(done_, "stepper result taken before the session finished");
  return std::move(result_);
}

void TunerStepper::finish(TuneResult result) {
  result_ = std::move(result);
  done_ = true;
  if (finishing_checkpoint_ != nullptr) {
    finishing_checkpoint_->finish_session(result_);
  }
}

TuneResult AutoTuner::tune(const TuningProblem& problem,
                           std::size_t budget_runs, ceal::Rng& rng) const {
  auto stepper = make_stepper(problem, budget_runs, rng);
  while (stepper->step()) {
  }
  return stepper->take_result();
}

TuneResult AutoTuner::tune(const TuningProblem& problem,
                           std::size_t budget_runs, ceal::Rng& rng,
                           CheckpointSession* checkpoint) const {
  auto stepper = make_stepper(problem, budget_runs, rng, checkpoint);
  while (stepper->step()) {
  }
  return stepper->take_result();
}

std::unique_ptr<TunerStepper> AutoTuner::make_stepper(
    const TuningProblem& problem, std::size_t budget_runs, ceal::Rng& rng,
    CheckpointSession* checkpoint) const {
  if (checkpoint == nullptr) return make_stepper(problem, budget_runs, rng);
  // The header captures the rng state *before* any draw (the Collector
  // splits the fault stream off it first thing), so resume can verify
  // the caller reseeded identically.
  checkpoint->set_telemetry(problem.telemetry);
  checkpoint->begin_session(
      make_checkpoint_header(problem, *this, budget_runs, rng));
  TuningProblem journaled = problem;
  journaled.checkpoint = checkpoint;
  auto stepper = make_stepper(journaled, budget_runs, rng);
  stepper->finishing_checkpoint_ = checkpoint;
  return stepper;
}

}  // namespace ceal::tuner
