#include "tuner/autotuner.h"

#include "tuner/checkpoint.h"

namespace ceal::tuner {

TuneResult AutoTuner::tune(const TuningProblem& problem,
                           std::size_t budget_runs, ceal::Rng& rng,
                           CheckpointSession* checkpoint) const {
  if (checkpoint == nullptr) return tune(problem, budget_runs, rng);
  // The header captures the rng state *before* any draw (the Collector
  // splits the fault stream off it first thing), so resume can verify
  // the caller reseeded identically.
  checkpoint->set_telemetry(problem.telemetry);
  checkpoint->begin_session(
      make_checkpoint_header(problem, *this, budget_runs, rng));
  TuningProblem journaled = problem;
  journaled.checkpoint = checkpoint;
  TuneResult result = tune(journaled, budget_runs, rng);
  checkpoint->finish_session(result);
  return result;
}

}  // namespace ceal::tuner
