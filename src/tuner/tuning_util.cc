#include "tuner/tuning_util.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/stats.h"
#include "core/telemetry.h"
#include "tuner/checkpoint.h"

namespace ceal::tuner {

TopKSelector::TopKSelector(std::size_t k) : k_(k) { heap_.reserve(k); }

void TopKSelector::push(double score, std::size_t index) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    heap_.emplace_back(score, index);
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  // (score, index) lexicographic: strictly better than the worst keeper
  // replaces it; an exact tie keeps the incumbent, matching the stable
  // argsort's preference for the index seen first.
  if (std::pair(score, index) < heap_.front()) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.back() = {score, index};
    std::push_heap(heap_.begin(), heap_.end());
  }
}

std::vector<std::size_t> TopKSelector::take() {
  std::sort(heap_.begin(), heap_.end());
  std::vector<std::size_t> out;
  out.reserve(heap_.size());
  for (const auto& [score, index] : heap_) out.push_back(index);
  heap_.clear();
  return out;
}

std::vector<std::size_t> smallest_k(std::span<const double> scores,
                                    std::size_t k) {
  TopKSelector selector(k);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    selector.push(scores[i], i);
  }
  return selector.take();
}

std::vector<std::size_t> top_unmeasured(std::span<const double> scores,
                                        const Collector& collector,
                                        std::size_t count) {
  CEAL_EXPECT(scores.size() == collector.problem().pool->size());
  // The k best unmeasured scores are the first k unmeasured entries of
  // the full ascending order, so filtering before the bounded selection
  // matches the old argsort-then-filter walk exactly.
  TopKSelector selector(count);
  for (std::size_t idx = 0; idx < scores.size(); ++idx) {
    if (!collector.is_measured(idx)) selector.push(scores[idx], idx);
  }
  return selector.take();
}

std::vector<std::size_t> random_unmeasured(const Collector& collector,
                                           std::size_t count,
                                           ceal::Rng& rng) {
  std::vector<std::size_t> candidates;
  const std::size_t pool_size = collector.problem().pool->size();
  candidates.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    if (!collector.is_measured(i)) candidates.push_back(i);
  }
  const std::size_t take = std::min(count, candidates.size());
  const auto picks = rng.sample_without_replacement(candidates.size(), take);
  std::vector<std::size_t> out;
  out.reserve(take);
  for (const std::size_t p : picks) out.push_back(candidates[p]);
  return out;
}

std::size_t measure_batch(Collector& collector,
                          std::span<const std::size_t> batch,
                          std::span<const double> topup_scores,
                          std::size_t want_ok) {
  if (CheckpointSession* checkpoint = collector.problem().checkpoint) {
    // Journal the batch selection before the first run: a resumed
    // session re-derives the batch from the same model state and the
    // record proves it landed on the same configurations.
    json::Value indices = json::Value::array();
    for (const std::size_t idx : batch) {
      indices.push(json::Value::number(static_cast<std::uint64_t>(idx)));
    }
    json::Value payload = json::Value::object();
    payload.set("kind", json::Value::string("batch"));
    payload.set("batch", std::move(indices));
    payload.set("want_ok",
                json::Value::number(static_cast<std::uint64_t>(want_ok)));
    checkpoint->decision(std::move(payload));
  }
  // Hand the whole batch to a parallel measurement backend up front so
  // it can dispatch runs while the loop below consumes them in order.
  collector.prefetch(batch);
  std::size_t ok = 0;
  for (const std::size_t idx : batch) {
    if (collector.remaining() == 0) break;
    if (collector.try_measure(idx).status == sim::RunStatus::kOk) ++ok;
  }
  // Fault top-up: keep the per-iteration count of usable measurements at
  // the intended batch size while budget and candidates last. The
  // fault-free path never enters the loop (every measurement succeeded).
  while (ok < want_ok && collector.remaining() > 0 &&
         !topup_scores.empty()) {
    const auto extra = top_unmeasured(topup_scores, collector, 1);
    if (extra.empty()) break;
    if (collector.try_measure(extra[0]).status == sim::RunStatus::kOk) ++ok;
  }
  return ok;
}

double fit_on_measured(Surrogate& surrogate, const Collector& collector,
                       ceal::Rng& rng) {
  const auto& indices = collector.ok_indices();
  const auto& values = collector.ok_values();
  CEAL_EXPECT_MSG(!indices.empty(), "no usable training samples collected");
  for (const double v : values) {
    CEAL_EXPECT_MSG(std::isfinite(v),
                    "non-finite measurement in the training set");
  }
  const MeasuredPool& pool = *collector.problem().pool;
  std::vector<config::Configuration> configs;
  configs.reserve(indices.size());
  for (const std::size_t idx : indices) configs.push_back(pool.configs[idx]);
  telemetry::Telemetry* tel = collector.problem().telemetry;
  if (tel != nullptr) tel->count("surrogate.fits");
  // Push the registry down into the GBT so the fit below (and every
  // later predict through this surrogate) records per-round spans and
  // split-search counters.
  surrogate.set_telemetry(tel);
  telemetry::ScopedCausalSpan span(tel, "surrogate.fit");
  surrogate.fit(collector.problem().workload->workflow.joint_space(),
                configs, values, rng);
  return span.stop();
}

TuneResult finalize_result(const Collector& collector,
                           std::vector<double> model_scores) {
  CEAL_EXPECT(model_scores.size() == collector.problem().pool->size());
  // The auto-tuner's score for a configuration it already measured is the
  // measurement itself; the surrogate only fills in the unmeasured rest.
  // Failed entries have no observation — their model score stands.
  {
    const auto& indices = collector.ok_indices();
    const auto& values = collector.ok_values();
    for (std::size_t s = 0; s < indices.size(); ++s) {
      model_scores[indices[s]] = values[s];
    }
  }
  TuneResult result;
  result.best_predicted_index = static_cast<std::size_t>(
      std::min_element(model_scores.begin(), model_scores.end()) -
      model_scores.begin());
  result.model_scores = std::move(model_scores);
  result.measured_indices = collector.measured_indices();
  result.measured_statuses = collector.measured_statuses();
  result.failed_runs = collector.failed_count();
  const auto& values = collector.ok_values();
  CEAL_EXPECT_MSG(!values.empty(),
                  "tuning session produced no usable measurement");
  const std::size_t best_pos = static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
  result.best_measured_index = collector.ok_indices()[best_pos];
  result.runs_used = collector.runs_used();
  result.cost_exec_s = collector.cost_exec_s();
  result.cost_comp_ch = collector.cost_comp_ch();
  if (telemetry::Telemetry* tel = collector.problem().telemetry) {
    telemetry::TraceEvent event("tune.finish");
    event.field("runs_used", result.runs_used)
        .field("measured", result.measured_indices.size())
        .field("failed_runs", result.failed_runs)
        .field("best_predicted_index", result.best_predicted_index)
        .field("best_measured_index", result.best_measured_index)
        .field("best_measured_value", values[best_pos])
        .field("cost_exec_s", result.cost_exec_s)
        .field("cost_comp_ch", result.cost_comp_ch);
    tel->emit(std::move(event));
  }
  return result;
}

void emit_tune_start(const TuningProblem& problem, const AutoTuner& algorithm,
                     std::size_t budget_runs) {
  telemetry::Telemetry* tel = problem.telemetry;
  if (tel == nullptr) return;
  tel->count("tune.sessions");
  telemetry::TraceEvent event("tune.start");
  event.field("algorithm", algorithm.name())
      .field("workflow", problem.workload->workflow.name())
      .field("objective", objective_name(problem.objective))
      .field("budget", budget_runs)
      .field("history", problem.components_are_history)
      .field("faults", problem.measurement.faults.enabled())
      .field("max_attempts", problem.measurement.max_attempts);
  tel->emit(std::move(event));
}

void emit_iteration_event(const TuningProblem& problem, const char* name,
                          std::size_t iteration, const Collector& collector,
                          std::size_t req_start, std::size_t ok_start,
                          double fit_s, double predict_s) {
  telemetry::Telemetry* tel = problem.telemetry;
  if (tel == nullptr) return;
  tel->count("tuner.iterations");
  const auto& requested = collector.measured_indices();
  // Deterministic distribution: successful measurements per batch is an
  // integer, so the histogram is byte-stable (see collector.cc).
  tel->observe("iteration.batch_ok",
               static_cast<double>(collector.ok_values().size() - ok_start));
  const auto& ok_values = collector.ok_values();
  telemetry::TraceEvent event(name);
  event.field("iteration", iteration)
      .field("batch", std::span<const std::size_t>(
                          requested.data() + req_start,
                          requested.size() - req_start))
      .field("batch_ok", ok_values.size() - ok_start)
      .field("batch_values",
             std::span<const double>(ok_values.data() + ok_start,
                                     ok_values.size() - ok_start))
      .field("budget_used", collector.runs_used())
      .field("budget_remaining", collector.remaining())
      .timing("fit_s", fit_s)
      .timing("predict_s", predict_s);
  tel->emit(std::move(event));
}

TunerProgress collector_progress(const Collector& collector) {
  TunerProgress progress;
  progress.budget_used = collector.runs_used();
  progress.budget_remaining = collector.remaining();
  if (collector.has_best_ok()) {
    progress.has_best = true;
    progress.best_value = collector.best_ok_value();
  }
  return progress;
}

void checkpoint_decision(
    const TuningProblem& problem, const char* kind,
    std::initializer_list<std::pair<const char*, json::Value>> fields) {
  CheckpointSession* checkpoint = problem.checkpoint;
  if (checkpoint == nullptr) return;
  json::Value payload = json::Value::object();
  payload.set("kind", json::Value::string(kind));
  for (const auto& [key, value] : fields) payload.set(key, value);
  checkpoint->decision(std::move(payload));
}

}  // namespace ceal::tuner
