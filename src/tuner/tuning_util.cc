#include "tuner/tuning_util.h"

#include <algorithm>

#include "core/error.h"
#include "core/stats.h"

namespace ceal::tuner {

std::vector<std::size_t> top_unmeasured(std::span<const double> scores,
                                        const Collector& collector,
                                        std::size_t count) {
  CEAL_EXPECT(scores.size() == collector.problem().pool->size());
  const auto order = ceal::argsort(scores);
  std::vector<std::size_t> out;
  out.reserve(count);
  for (const std::size_t idx : order) {
    if (out.size() == count) break;
    if (!collector.is_measured(idx)) out.push_back(idx);
  }
  return out;
}

std::vector<std::size_t> random_unmeasured(const Collector& collector,
                                           std::size_t count,
                                           ceal::Rng& rng) {
  std::vector<std::size_t> candidates;
  const std::size_t pool_size = collector.problem().pool->size();
  candidates.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    if (!collector.is_measured(i)) candidates.push_back(i);
  }
  const std::size_t take = std::min(count, candidates.size());
  const auto picks = rng.sample_without_replacement(candidates.size(), take);
  std::vector<std::size_t> out;
  out.reserve(take);
  for (const std::size_t p : picks) out.push_back(candidates[p]);
  return out;
}

std::size_t measure_batch(Collector& collector,
                          std::span<const std::size_t> batch) {
  std::size_t measured = 0;
  for (const std::size_t idx : batch) {
    if (collector.remaining() == 0) break;
    collector.measure(idx);
    ++measured;
  }
  return measured;
}

void fit_on_measured(Surrogate& surrogate, const Collector& collector,
                     ceal::Rng& rng) {
  const auto& indices = collector.measured_indices();
  CEAL_EXPECT_MSG(!indices.empty(), "no training samples collected");
  const MeasuredPool& pool = *collector.problem().pool;
  std::vector<config::Configuration> configs;
  configs.reserve(indices.size());
  for (const std::size_t idx : indices) configs.push_back(pool.configs[idx]);
  surrogate.fit(collector.problem().workload->workflow.joint_space(),
                configs, collector.measured_values(), rng);
}

TuneResult finalize_result(const Collector& collector,
                           std::vector<double> model_scores) {
  CEAL_EXPECT(model_scores.size() == collector.problem().pool->size());
  // The auto-tuner's score for a configuration it already measured is the
  // measurement itself; the surrogate only fills in the unmeasured rest.
  {
    const auto& indices = collector.measured_indices();
    const auto& values = collector.measured_values();
    for (std::size_t s = 0; s < indices.size(); ++s) {
      model_scores[indices[s]] = values[s];
    }
  }
  TuneResult result;
  result.best_predicted_index = static_cast<std::size_t>(
      std::min_element(model_scores.begin(), model_scores.end()) -
      model_scores.begin());
  result.model_scores = std::move(model_scores);
  result.measured_indices = collector.measured_indices();
  CEAL_EXPECT(!result.measured_indices.empty());
  const auto& values = collector.measured_values();
  const std::size_t best_pos = static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
  result.best_measured_index = result.measured_indices[best_pos];
  result.runs_used = collector.runs_used();
  result.cost_exec_s = collector.cost_exec_s();
  result.cost_comp_ch = collector.cost_comp_ch();
  return result;
}

}  // namespace ceal::tuner
