// Common interface of all auto-tuning algorithms (RS, AL, GEIST, ALpH,
// CEAL). Each algorithm consumes a TuningProblem plus a budget of
// workflow-run equivalents and produces a TuneResult carrying the final
// surrogate's scores over the whole pool, the training history, and the
// collection cost — everything the evaluation metrics of §7.2 need.
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "tuner/measured_pool.h"

#include <memory>

namespace ceal::tuner {

class CheckpointSession;
class TunerStepper;

struct TuneResult {
  /// Final-model scores for every pool configuration (lower = better).
  std::vector<double> model_scores;
  /// Pool indices requested as training samples, in order — including
  /// attempts that failed or were censored under fault injection.
  std::vector<std::size_t> measured_indices;
  /// Run status per measured_indices entry (all kOk without faults).
  std::vector<sim::RunStatus> measured_statuses;
  /// Number of measured_indices entries without a usable value.
  std::size_t failed_runs = 0;
  /// The searcher's recommendation: argmin of model_scores.
  std::size_t best_predicted_index = 0;
  /// Best *measured* training configuration (argmin observed value).
  std::size_t best_measured_index = 0;
  std::size_t runs_used = 0;
  /// Collection cost: summed wall-clock seconds of charged runs.
  double cost_exec_s = 0.0;
  /// Collection cost in core-hours.
  double cost_comp_ch = 0.0;
};

class AutoTuner {
 public:
  virtual ~AutoTuner() = default;

  virtual std::string name() const = 0;

  /// Creates a resumable step-wise session (tuner/stepper.h): each
  /// step() runs one bounded slice (a warm-up batch, one refinement
  /// iteration, the finalisation pass) and yields, so a server can
  /// multiplex many sessions over a shared thread pool. Driving the
  /// stepper to completion is exactly tune() — same rng draws, same
  /// telemetry events, same checkpoint records, bitwise-equal result.
  /// `problem` is copied; the objects it points to and `rng` must
  /// outlive the stepper.
  virtual std::unique_ptr<TunerStepper> make_stepper(
      const TuningProblem& problem, std::size_t budget_runs,
      ceal::Rng& rng) const = 0;

  /// Runs one complete auto-tuning session within `budget_runs` workflow-
  /// run equivalents. Deterministic given `rng`'s state. Implemented by
  /// driving make_stepper()'s session to completion.
  TuneResult tune(const TuningProblem& problem, std::size_t budget_runs,
                  ceal::Rng& rng) const;

  /// Crash-safe overload: journals the session into `checkpoint` so a
  /// killed process can resume it (tuner/checkpoint.h). With a null
  /// checkpoint this is exactly the plain overload — existing callers
  /// are untouched. When `checkpoint` was opened in resume mode the
  /// journaled prefix of the session is replayed (measurements are
  /// served from the journal, free of machine time) and the session
  /// continues live from the crash point; the returned TuneResult is
  /// bitwise identical to an uninterrupted run. Throws CheckpointError
  /// when the journal does not match (problem, budget_runs, rng).
  TuneResult tune(const TuningProblem& problem, std::size_t budget_runs,
                  ceal::Rng& rng, CheckpointSession* checkpoint) const;

  /// Checkpointable stepper: writes/validates the session header now
  /// and attaches `checkpoint` to the stepper's problem, so the session
  /// journals every measurement and decision as it is stepped and
  /// writes the terminal record when it finishes. A null checkpoint is
  /// exactly the plain overload.
  std::unique_ptr<TunerStepper> make_stepper(
      const TuningProblem& problem, std::size_t budget_runs, ceal::Rng& rng,
      CheckpointSession* checkpoint) const;
};

}  // namespace ceal::tuner
