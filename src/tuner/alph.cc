#include "tuner/alph.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/error.h"
#include "core/telemetry.h"
#include "ml/dataset.h"
#include "ml/gbt.h"
#include "tuner/collector.h"
#include "tuner/low_fidelity.h"
#include "tuner/stepper.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

namespace {

/// Joint-config features augmented with per-component model predictions.
std::vector<double> augmented_features(const sim::InSituWorkflow& workflow,
                                       const ComponentModelSet& components,
                                       const config::Configuration& joint) {
  std::vector<double> f = workflow.joint_space().features(joint);
  for (std::size_t j = 0; j < workflow.component_count(); ++j) {
    f.push_back(components.predict(j, workflow.space().slice(joint, j)));
  }
  return f;
}

}  // namespace

Alph::Alph(AlphParams params) : params_(params) {
  CEAL_EXPECT(params_.iterations >= 1);
  CEAL_EXPECT(params_.init_fraction > 0.0 && params_.init_fraction <= 1.0);
  CEAL_EXPECT(params_.component_fraction >= 0.0 &&
              params_.component_fraction < 1.0);
}

namespace {

// ALpH sliced at its natural boundaries: component-model training plus
// pool featurization first, the random warm-up, one fit/score/measure
// refinement per step, the final fit.
class AlphStepper final : public TunerStepper {
 public:
  AlphStepper(const Alph& algorithm, const AlphParams& params,
              const TuningProblem& problem, std::size_t budget_runs,
              ceal::Rng& rng)
      : TunerStepper(problem, budget_runs, rng),
        params_(params),
        collector_(problem_, budget_runs, rng_),
        model_(ml::GradientBoostedTrees::surrogate_defaults()) {
    emit_tune_start(problem_, algorithm, budget_);
  }

  TunerProgress progress() const override {
    return collector_progress(collector_);
  }

 private:
  enum class Phase { kComponents, kWarmup, kLoop, kFinal };

  // Same log-target treatment as Surrogate (times span decades). Only
  // successful measurements train the model — failed entries carry no
  // value, and the positivity guard keeps NaN/Inf out of the fit.
  double fit() {
    telemetry::Telemetry* tel = problem_.telemetry;
    if (tel != nullptr) tel->count("surrogate.fits");
    telemetry::ScopedCausalSpan span(tel, "surrogate.fit");
    const auto& indices = collector_.ok_indices();
    const auto& values = collector_.ok_values();
    ml::Dataset data(width_);
    for (std::size_t s = 0; s < indices.size(); ++s) {
      CEAL_EXPECT(std::isfinite(values[s]) && values[s] > 0.0);
      data.add(pool_features_[indices[s]], std::log(values[s]));
    }
    model_.fit(data, *rng_);
    return span.stop();
  }

  std::vector<double> predict_pool(double* elapsed_s = nullptr) {
    telemetry::ScopedCausalSpan span(problem_.telemetry, "surrogate.predict");
    const std::size_t pool_size = problem_.pool->size();
    std::vector<double> scores(pool_size);
    for (std::size_t i = 0; i < pool_size; ++i) {
      scores[i] = std::exp(model_.predict(pool_features_[i]));
    }
    const double s = span.stop();
    if (elapsed_s != nullptr) *elapsed_s = s;
    return scores;
  }

  void do_step() override {
    const auto& workflow = problem_.workload->workflow;
    if (phase_ == Phase::kComponents) {
      // Component models: free history when available, otherwise charged
      // runs.
      const std::vector<std::vector<std::size_t>>* component_indices =
          nullptr;
      if (problem_.components_are_history) {
        component_indices = &collector_.all_component_samples();
      } else {
        const auto rounds = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::llround(params_.component_fraction *
                                static_cast<double>(budget_))));
        component_indices =
            &collector_.acquire_component_samples(rounds, *rng_);
      }
      components_ = std::make_unique<ComponentModelSet>(
          workflow, problem_.objective, *problem_.component_samples,
          *component_indices, *rng_);

      // Pre-compute the augmented feature rows for the whole pool once.
      const std::size_t pool_size = problem_.pool->size();
      width_ = workflow.joint_space().dimension() + workflow.component_count();
      pool_features_.resize(pool_size);
      for (std::size_t i = 0; i < pool_size; ++i) {
        pool_features_[i] = augmented_features(workflow, *components_,
                                               problem_.pool->configs[i]);
      }
      phase_ = Phase::kWarmup;
      return;
    }
    if (phase_ == Phase::kWarmup) {
      const auto warmup = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::llround(
                 params_.init_fraction * static_cast<double>(budget_))));
      measure_batch(collector_, random_unmeasured(collector_, warmup, *rng_));
      batch_size_ = std::max<std::size_t>(
          1, (budget_ - std::min(warmup, budget_)) / params_.iterations);
      phase_ = Phase::kLoop;
      return;
    }
    if (phase_ == Phase::kLoop) {
      while (collector_.remaining() > 0) {
        const std::size_t req_start = collector_.measured_indices().size();
        const std::size_t ok_start = collector_.ok_values().size();
        if (collector_.ok_indices().empty()) {
          const auto batch =
              random_unmeasured(collector_, batch_size_, *rng_);
          if (batch.empty()) break;
          measure_batch(collector_, batch);
          emit_iteration_event(problem_, "alph.iteration", iteration_++,
                               collector_, req_start, ok_start, 0.0, 0.0);
          return;  // one iteration per step
        }
        const double fit_s = fit();
        double predict_s = 0.0;
        const auto scores = predict_pool(&predict_s);
        const auto batch = top_unmeasured(scores, collector_, batch_size_);
        if (batch.empty()) break;
        measure_batch(collector_, batch, scores, batch_size_);
        emit_iteration_event(problem_, "alph.iteration", iteration_++,
                             collector_, req_start, ok_start, fit_s,
                             predict_s);
        return;  // one iteration per step
      }
      phase_ = Phase::kFinal;
    }

    fit();
    finish(finalize_result(collector_, predict_pool()));
  }

  AlphParams params_;
  Collector collector_;
  ml::GradientBoostedTrees model_;
  std::unique_ptr<ComponentModelSet> components_;
  std::vector<std::vector<double>> pool_features_;
  std::size_t width_ = 0;
  Phase phase_ = Phase::kComponents;
  std::size_t batch_size_ = 1;
  std::size_t iteration_ = 0;
};

}  // namespace

std::unique_ptr<TunerStepper> Alph::make_stepper(const TuningProblem& problem,
                                                 std::size_t budget_runs,
                                                 ceal::Rng& rng) const {
  return std::make_unique<AlphStepper>(*this, params_, problem, budget_runs,
                                       rng);
}

}  // namespace ceal::tuner
