#include "tuner/alph.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/error.h"
#include "core/telemetry.h"
#include "ml/dataset.h"
#include "ml/gbt.h"
#include "tuner/collector.h"
#include "tuner/low_fidelity.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

namespace {

/// Joint-config features augmented with per-component model predictions.
std::vector<double> augmented_features(const sim::InSituWorkflow& workflow,
                                       const ComponentModelSet& components,
                                       const config::Configuration& joint) {
  std::vector<double> f = workflow.joint_space().features(joint);
  for (std::size_t j = 0; j < workflow.component_count(); ++j) {
    f.push_back(components.predict(j, workflow.space().slice(joint, j)));
  }
  return f;
}

}  // namespace

Alph::Alph(AlphParams params) : params_(params) {
  CEAL_EXPECT(params_.iterations >= 1);
  CEAL_EXPECT(params_.init_fraction > 0.0 && params_.init_fraction <= 1.0);
  CEAL_EXPECT(params_.component_fraction >= 0.0 &&
              params_.component_fraction < 1.0);
}

TuneResult Alph::tune(const TuningProblem& problem, std::size_t budget_runs,
                      ceal::Rng& rng) const {
  Collector collector(problem, budget_runs, &rng);
  emit_tune_start(problem, *this, budget_runs);
  telemetry::Telemetry* tel = problem.telemetry;
  const auto& workflow = problem.workload->workflow;

  // Component models: free history when available, otherwise charged runs.
  const std::vector<std::vector<std::size_t>>* component_indices = nullptr;
  if (problem.components_are_history) {
    component_indices = &collector.all_component_samples();
  } else {
    const auto rounds = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               params_.component_fraction * static_cast<double>(budget_runs))));
    component_indices = &collector.acquire_component_samples(rounds, rng);
  }
  const ComponentModelSet components(workflow, problem.objective,
                                     *problem.component_samples,
                                     *component_indices, rng);

  // Pre-compute the augmented feature rows for the whole pool once.
  const std::size_t pool_size = problem.pool->size();
  const std::size_t width =
      workflow.joint_space().dimension() + workflow.component_count();
  std::vector<std::vector<double>> pool_features(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    pool_features[i] =
        augmented_features(workflow, components, problem.pool->configs[i]);
  }

  // Same log-target treatment as Surrogate (times span decades). Only
  // successful measurements train the model — failed entries carry no
  // value, and the positivity guard keeps NaN/Inf out of the fit.
  const auto fit = [&](ml::GradientBoostedTrees& model) {
    if (tel != nullptr) tel->count("surrogate.fits");
    telemetry::ScopedSpan span(tel, "surrogate.fit");
    const auto& indices = collector.ok_indices();
    const auto& values = collector.ok_values();
    ml::Dataset data(width);
    for (std::size_t s = 0; s < indices.size(); ++s) {
      CEAL_EXPECT(std::isfinite(values[s]) && values[s] > 0.0);
      data.add(pool_features[indices[s]], std::log(values[s]));
    }
    model.fit(data, rng);
    return span.stop();
  };
  const auto predict_pool = [&](const ml::GradientBoostedTrees& model,
                                double* elapsed_s = nullptr) {
    telemetry::ScopedSpan span(tel, "surrogate.predict");
    std::vector<double> scores(pool_size);
    for (std::size_t i = 0; i < pool_size; ++i) {
      scores[i] = std::exp(model.predict(pool_features[i]));
    }
    const double s = span.stop();
    if (elapsed_s != nullptr) *elapsed_s = s;
    return scores;
  };

  const auto warmup = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(
             params_.init_fraction * static_cast<double>(budget_runs))));
  measure_batch(collector, random_unmeasured(collector, warmup, rng));

  const std::size_t batch_size = std::max<std::size_t>(
      1, (budget_runs - std::min(warmup, budget_runs)) / params_.iterations);

  ml::GradientBoostedTrees model(
      ml::GradientBoostedTrees::surrogate_defaults());
  std::size_t iteration = 0;
  while (collector.remaining() > 0) {
    const std::size_t req_start = collector.measured_indices().size();
    const std::size_t ok_start = collector.ok_values().size();
    if (collector.ok_indices().empty()) {
      const auto batch = random_unmeasured(collector, batch_size, rng);
      if (batch.empty()) break;
      measure_batch(collector, batch);
      emit_iteration_event(problem, "alph.iteration", iteration++, collector,
                           req_start, ok_start, 0.0, 0.0);
      continue;
    }
    const double fit_s = fit(model);
    double predict_s = 0.0;
    const auto scores = predict_pool(model, &predict_s);
    const auto batch = top_unmeasured(scores, collector, batch_size);
    if (batch.empty()) break;
    measure_batch(collector, batch, scores, batch_size);
    emit_iteration_event(problem, "alph.iteration", iteration++, collector,
                         req_start, ok_start, fit_s, predict_s);
  }

  fit(model);
  return finalize_result(collector, predict_pool(model));
}

}  // namespace ceal::tuner
