#include "tuner/result_io.h"

#include <cstdio>

#include "core/atomic_file.h"
#include "sim/fault_model.h"

namespace ceal::tuner {

std::string hex_double(double v) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%a", v);
  return buffer;
}

void save_result_csv(const std::string& path, const TuneResult& result,
                     const std::string& algorithm,
                     const std::string& workflow,
                     const std::string& objective, std::size_t budget,
                     std::uint64_t seed) {
  AtomicFile file(path);
  auto& os = file.stream();
  os << "key,value\n";
  os << "algorithm," << algorithm << '\n';
  os << "workflow," << workflow << '\n';
  os << "objective," << objective << '\n';
  os << "budget," << budget << '\n';
  os << "seed," << seed << '\n';
  os << "runs_used," << result.runs_used << '\n';
  os << "measured," << result.measured_indices.size() << '\n';
  os << "failed_runs," << result.failed_runs << '\n';
  os << "best_predicted_index," << result.best_predicted_index << '\n';
  os << "best_measured_index," << result.best_measured_index << '\n';
  os << "cost_exec_s," << hex_double(result.cost_exec_s) << '\n';
  os << "cost_comp_ch," << hex_double(result.cost_comp_ch) << '\n';
  for (std::size_t s = 0; s < result.measured_indices.size(); ++s) {
    os << "measured." << s << ',' << result.measured_indices[s] << ':'
       << sim::run_status_name(result.measured_statuses[s]) << '\n';
  }
  for (std::size_t i = 0; i < result.model_scores.size(); ++i) {
    os << "score." << i << ',' << hex_double(result.model_scores[i]) << '\n';
  }
  file.commit();
}

}  // namespace ceal::tuner
