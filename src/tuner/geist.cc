#include "tuner/geist.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "core/error.h"
#include "core/stats.h"
#include "core/telemetry.h"
#include "tuner/collector.h"
#include "tuner/stepper.h"
#include "tuner/surrogate.h"
#include "tuner/tuning_util.h"

namespace ceal::tuner {

PoolGraph::PoolGraph(const config::ConfigSpace& space,
                     const std::vector<config::Configuration>& configs,
                     std::size_t k_neighbors) {
  CEAL_EXPECT(configs.size() >= 2);
  CEAL_EXPECT(k_neighbors >= 1);
  const std::size_t n = configs.size();
  const std::size_t d = space.dimension();
  const std::size_t k = std::min(k_neighbors, n - 1);

  // Min-max normalise features over the pool.
  std::vector<double> feat(n * d);
  std::vector<double> lo(d, std::numeric_limits<double>::infinity());
  std::vector<double> hi(d, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    const auto f = space.features(configs[i]);
    for (std::size_t j = 0; j < d; ++j) {
      feat[i * d + j] = f[j];
      lo[j] = std::min(lo[j], f[j]);
      hi[j] = std::max(hi[j], f[j]);
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double span = hi[j] - lo[j];
    const double scale = span > 0.0 ? 1.0 / span : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      feat[i * d + j] = (feat[i * d + j] - lo[j]) * scale;
    }
  }

  neighbors_.resize(n);
  std::vector<std::pair<double, std::size_t>> dist(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t m = 0; m < n; ++m) {
      double acc = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double delta = feat[i * d + j] - feat[m * d + j];
        acc += delta * delta;
      }
      dist[m] = {acc, m};
    }
    dist[i].first = std::numeric_limits<double>::infinity();  // not self
    std::partial_sort(dist.begin(),
                      dist.begin() + static_cast<std::ptrdiff_t>(k),
                      dist.end());
    neighbors_[i].reserve(k);
    for (std::size_t m = 0; m < k; ++m) {
      neighbors_[i].push_back(dist[m].second);
    }
  }
}

const std::vector<std::size_t>& PoolGraph::neighbors(std::size_t i) const {
  CEAL_EXPECT(i < neighbors_.size());
  return neighbors_[i];
}

Geist::Geist(GeistParams params) : params_(std::move(params)) {
  CEAL_EXPECT(params_.iterations >= 1);
  CEAL_EXPECT(params_.init_fraction > 0.0 && params_.init_fraction <= 1.0);
  CEAL_EXPECT(params_.alpha >= 0.0 && params_.alpha <= 1.0);
  CEAL_EXPECT(params_.top_quantile > 0.0 && params_.top_quantile < 1.0);
}

namespace {

// GEIST sliced at its natural boundaries: warm-up batch, one label
// propagation + measurement per step, final surrogate fit.
class GeistStepper final : public TunerStepper {
 public:
  GeistStepper(const Geist& algorithm, const GeistParams& params,
               const TuningProblem& problem, std::size_t budget_runs,
               ceal::Rng& rng)
      : TunerStepper(problem, budget_runs, rng),
        params_(params),
        collector_(problem_, budget_runs, rng_) {
    emit_tune_start(problem_, algorithm, budget_);
    const auto& space = problem_.workload->workflow.joint_space();
    graph_ = params_.graph;
    if (!graph_) {
      graph_ = std::make_shared<PoolGraph>(space, problem_.pool->configs,
                                           params_.k_neighbors);
    }
    CEAL_EXPECT_MSG(graph_->size() == problem_.pool->size(),
                    "pool graph does not match the pool");
  }

  TunerProgress progress() const override {
    return collector_progress(collector_);
  }

 private:
  enum class Phase { kWarmup, kLoop, kFinal };

  void do_step() override {
    telemetry::Telemetry* tel = problem_.telemetry;
    const std::size_t pool_size = problem_.pool->size();
    if (phase_ == Phase::kWarmup) {
      const auto warmup = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::llround(
                 params_.init_fraction * static_cast<double>(budget_))));
      measure_batch(collector_, random_unmeasured(collector_, warmup, *rng_));
      batch_size_ = std::max<std::size_t>(
          1, (budget_ - std::min(warmup, budget_)) / params_.iterations);
      phase_ = Phase::kLoop;
      return;
    }
    if (phase_ == Phase::kLoop) {
      while (collector_.remaining() > 0) {
        const std::size_t req_start = collector_.measured_indices().size();
        const std::size_t ok_start = collector_.ok_values().size();
        // Seed labels: successfully measured configs in the running top
        // quantile are 1 (failed attempts carry no label signal).
        const auto& indices = collector_.ok_indices();
        const auto& values = collector_.ok_values();
        if (indices.empty()) {
          const auto batch =
              random_unmeasured(collector_, batch_size_, *rng_);
          if (batch.empty()) break;
          measure_batch(collector_, batch);
          emit_iteration_event(problem_, "geist.iteration", iteration_++,
                               collector_, req_start, ok_start, 0.0, 0.0);
          return;  // one iteration per step
        }
        telemetry::ScopedCausalSpan propagate_span(tel, "geist.propagate");
        const double threshold = ceal::quantile(values, params_.top_quantile);

        std::vector<double> belief(pool_size, 0.5);  // unknown prior
        std::vector<double> seed(pool_size, -1.0);
        for (std::size_t s = 0; s < indices.size(); ++s) {
          seed[indices[s]] = values[s] <= threshold ? 1.0 : 0.0;
          belief[indices[s]] = seed[indices[s]];
        }

        for (std::size_t it = 0; it < params_.propagation_iters; ++it) {
          std::vector<double> next(pool_size);
          for (std::size_t i = 0; i < pool_size; ++i) {
            const auto& nbrs = graph_->neighbors(i);
            double acc = 0.0;
            for (const std::size_t nb : nbrs) acc += belief[nb];
            const double propagated =
                acc / static_cast<double>(nbrs.size());
            if (seed[i] >= 0.0) {
              // Labeled nodes stay anchored to their observation.
              next[i] = (1.0 - params_.alpha) * propagated +
                        params_.alpha * seed[i];
            } else {
              next[i] = propagated;
            }
          }
          belief.swap(next);
        }

        // Measure the unlabeled nodes believed most likely to be top.
        std::vector<double> selection_score(pool_size);
        for (std::size_t i = 0; i < pool_size; ++i) {
          // lower = better for top_unmeasured
          selection_score[i] = -belief[i];
        }
        const double propagate_s = propagate_span.stop();
        const auto batch =
            top_unmeasured(selection_score, collector_, batch_size_);
        if (batch.empty()) break;
        measure_batch(collector_, batch, selection_score, batch_size_);
        // Label propagation is this tuner's model step; report as fit_s.
        emit_iteration_event(problem_, "geist.iteration", iteration_++,
                             collector_, req_start, ok_start, propagate_s,
                             0.0);
        return;  // one iteration per step
      }
      phase_ = Phase::kFinal;
    }

    // Final surrogate for the searcher, trained on everything measured —
    // the same model family all algorithms use (§7.3).
    Surrogate surrogate(problem_.surrogate_gbt);
    fit_on_measured(surrogate, collector_, *rng_);
    telemetry::ScopedCausalSpan predict_span(tel, "surrogate.predict");
    auto scores = surrogate.predict_many(
        problem_.workload->workflow.joint_space(), problem_.pool->configs);
    predict_span.stop();
    finish(finalize_result(collector_, std::move(scores)));
  }

  GeistParams params_;
  Collector collector_;
  std::shared_ptr<const PoolGraph> graph_;
  Phase phase_ = Phase::kWarmup;
  std::size_t batch_size_ = 1;
  std::size_t iteration_ = 0;
};

}  // namespace

std::unique_ptr<TunerStepper> Geist::make_stepper(const TuningProblem& problem,
                                                  std::size_t budget_runs,
                                                  ceal::Rng& rng) const {
  return std::make_unique<GeistStepper>(*this, params_, problem, budget_runs,
                                        rng);
}

}  // namespace ceal::tuner
