// Evaluation harness implementing the paper's three metric families
// (§7.2): performance of the best predicted configuration, robustness
// (recall scores), and practicality (least number of uses), plus the
// MdAPE analysis of §7.4.2. Each algorithm is run `replications` times
// with independent seeds and the metrics are averaged (the paper uses
// 100 runs).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/thread_pool.h"
#include "tuner/autotuner.h"

namespace ceal::tuner {

inline constexpr std::size_t kRecallDepth = 10;

struct EvalSummary {
  std::string algorithm;
  std::string workload;
  Objective objective = Objective::kExecTime;
  std::size_t budget = 0;
  std::size_t replications = 0;

  /// Actual (noise-free) objective value of the predicted-best
  /// configuration, normalised by the best value in the pool; 1.0 means
  /// the tuner found the pool optimum every time.
  double mean_norm_perf = 0.0;
  double median_norm_perf = 0.0;

  /// Mean recall score (percent) for top n = 1..kRecallDepth.
  std::array<double, kRecallDepth> mean_recall{};

  /// Median absolute percentage error of the final surrogate over all
  /// pool configurations, and over the top 2% (by measurement).
  double mean_mdape_all = 0.0;
  double mean_mdape_top2 = 0.0;

  /// Mean data-collection cost.
  double mean_cost_exec_s = 0.0;
  double mean_cost_comp_ch = 0.0;
  double mean_runs_used = 0.0;

  /// Mean per-run improvement over the expert recommendation, in the
  /// objective's unit (Δp of §7.2.3; negative = worse than expert).
  double mean_improvement = 0.0;
  /// Least number of workflow uses to recoup the tuning cost:
  /// mean collection cost / mean improvement. +inf when the algorithm
  /// does not beat the expert on average.
  double least_uses = 0.0;
  /// Fraction of replications whose recommendation beat the expert.
  double frac_beat_expert = 0.0;
};

/// Runs `algorithm` `replications` times on `problem` with the given
/// budget and aggregates the metrics. Replications execute on `pool`
/// when provided (must outlive the call), serially otherwise.
EvalSummary evaluate(const TuningProblem& problem, const AutoTuner& algorithm,
                     std::size_t budget, std::size_t replications,
                     std::uint64_t seed, ceal::ThreadPool* pool = nullptr);

}  // namespace ceal::tuner
