// CSV persistence for measured pools and component samples.
//
// Measuring a 2000-configuration pool is the expensive part of an
// auto-tuning study (on real hardware it *is* the study), so pools are
// saved and reloaded across sessions and shared between the CLI tools.
//
// Format (one header line, then one row per configuration):
//   p0,p1,...,p{d-1},exec_s,comp_ch[,true_exec_s,true_comp_ch]
// Column names for the parameters come from the space. Truth columns are
// present only when the pool carries them (simulator-generated pools do;
// hardware pools will not).
#pragma once

#include <string>

#include "config/config_space.h"
#include "tuner/measured_pool.h"

namespace ceal::tuner {

/// Writes `pool` to `path` atomically (write-temp -> fsync -> rename):
/// a crash mid-save leaves the previous file intact, never a truncated
/// one. Throws std::runtime_error on I/O failure.
void save_pool_csv(const MeasuredPool& pool,
                   const config::ConfigSpace& space,
                   const std::string& path);

/// Reads a pool written by save_pool_csv. Every configuration is
/// validated against `space`; truth columns are optional and fall back
/// to the measured values when absent. Throws ceal::PreconditionError
/// with a one-line "<path>:<lineno>: why" message on malformed content.
MeasuredPool load_pool_csv(const config::ConfigSpace& space,
                           const std::string& path);

/// Writes one component's samples (same row format, component space),
/// atomically like save_pool_csv.
void save_component_csv(const ComponentSamples& samples,
                        const config::ConfigSpace& space,
                        const std::string& path);

/// Reads component samples written by save_component_csv.
ComponentSamples load_component_csv(const config::ConfigSpace& space,
                                    const std::string& path);

}  // namespace ceal::tuner
