#include "tuner/low_fidelity.h"

#include <algorithm>

#include "core/error.h"
#include "ml/dataset.h"

namespace ceal::tuner {

ComponentModelSet::ComponentModelSet(
    const sim::InSituWorkflow& workflow, Objective objective,
    const std::vector<ComponentSamples>& samples,
    const std::vector<std::vector<std::size_t>>& sample_indices,
    ceal::Rng& rng, const ml::GbtParams& gbt)
    : workflow_(&workflow) {
  CEAL_EXPECT(samples.size() == workflow.component_count());
  CEAL_EXPECT(sample_indices.size() == samples.size());

  models_.reserve(samples.size());
  for (std::size_t j = 0; j < samples.size(); ++j) {
    CEAL_EXPECT_MSG(!sample_indices[j].empty(),
                    "component model needs at least one sample");
    const auto& space = workflow.app(j).space();
    const auto& values = samples[j].measured(objective);
    std::vector<config::Configuration> configs;
    std::vector<double> targets;
    configs.reserve(sample_indices[j].size());
    targets.reserve(sample_indices[j].size());
    for (const std::size_t idx : sample_indices[j]) {
      CEAL_EXPECT(idx < samples[j].size());
      configs.push_back(samples[j].configs[idx]);
      targets.push_back(values[idx]);
    }
    Surrogate model(gbt);
    model.fit(space, configs, targets, rng);
    models_.push_back(std::move(model));
  }
}

double ComponentModelSet::predict(
    std::size_t j, const config::Configuration& component_config) const {
  CEAL_EXPECT(j < models_.size());
  return models_[j].predict(workflow_->app(j).space(), component_config);
}

std::vector<double> ComponentModelSet::predict_many(
    std::size_t j, const ml::FeatureMatrix& rows) const {
  CEAL_EXPECT(j < models_.size());
  return models_[j].predict_many(rows);
}

LowFidelityModel::LowFidelityModel(
    const sim::InSituWorkflow& workflow, Objective objective,
    std::shared_ptr<const ComponentModelSet> components)
    : workflow_(&workflow),
      objective_(objective),
      components_(std::move(components)) {
  CEAL_EXPECT(components_ != nullptr);
  CEAL_EXPECT(components_->component_count() == workflow.component_count());
}

double LowFidelityModel::score(const config::Configuration& joint) const {
  double combined =
      objective_ == Objective::kExecTime ? 0.0 : 0.0;  // max / sum seed
  for (std::size_t j = 0; j < workflow_->component_count(); ++j) {
    const double v =
        components_->predict(j, workflow_->space().slice(joint, j));
    if (objective_ == Objective::kExecTime) {
      combined = std::max(combined, v);
    } else {
      combined += v;
    }
  }
  return combined;
}

std::vector<double> LowFidelityModel::score_many(
    std::span<const config::Configuration> joints) const {
  std::vector<double> out(joints.size());
  for (std::size_t i = 0; i < joints.size(); ++i) out[i] = score(joints[i]);
  return out;
}

std::vector<double> LowFidelityModel::score_many(
    const PoolFeatures& pool) const {
  const std::size_t n_comps = workflow_->component_count();
  CEAL_EXPECT(pool.components.size() == n_comps);

  // Component-major evaluation: each component's surrogate scores its
  // cached slice matrix in one (parallel) batch. The per-row combine
  // folds components in ascending j, exactly like score(), so results
  // match the uncached path bitwise.
  std::vector<double> out(pool.size(), 0.0);
  for (std::size_t j = 0; j < n_comps; ++j) {
    const std::vector<double> comp =
        components_->predict_many(j, pool.components[j]);
    if (objective_ == Objective::kExecTime) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = std::max(out[i], comp[i]);
      }
    } else {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += comp[i];
    }
  }
  return out;
}

}  // namespace ceal::tuner
