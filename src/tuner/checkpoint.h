// Checkpoint/resume for tuning sessions: a write-ahead journal of every
// decision the session's expensive state depends on, replayed to
// reconstruct mid-session tuner state after a crash.
//
// The design exploits the library's determinism contract: a tuner is a
// deterministic function of (problem, budget, rng seed) *and* the
// measurement outcomes the Collector hands it. Measurements are the only
// expensive part (on real hardware each one is a workflow run costing
// minutes to hours), so the journal records
//
//   * a session header — algorithm, workflow, objective, budget,
//     measurement policy, a pool fingerprint, and the tuner rng state at
//     entry — that resume validates field-by-field against the current
//     invocation (version or configuration skew is a one-line error);
//   * one record per Collector measurement — pool index, RunStatus,
//     value, attempts, charged budget units, charged wall-clock /
//     core-hour deltas (hex floats, so they restore bitwise), and the
//     fault-rng state after the attempt sequence;
//   * validation records for the tuner's decision points — batch
//     selections, CEAL's M_L -> M_H switch, random top-ups, component
//     acquisitions — cheap to recompute but cross-checked on resume so
//     a divergent replay fails loudly instead of silently forking.
//
// Resume re-executes the tuner from the same seed; the Collector serves
// journaled measurements from the log (free — no machine time is
// re-spent, counted in `resume.replayed_runs`) and restores the
// fault-rng stream position from the last replayed record, so the first
// live measurement after the crash point draws exactly what the
// uninterrupted session would have drawn. Killing a session at *any*
// journal record boundary and resuming therefore produces a bitwise
// identical TuneResult (tests/integration/test_crash_matrix.cc sweeps
// every boundary; tools/run_tier1.sh SIGKILLs a real ceal_tune process
// and diffs the artifacts). See docs/RELIABILITY.md.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/journal.h"
#include "core/rng.h"
#include "sim/fault_model.h"

namespace ceal::telemetry {
class Telemetry;
}

namespace ceal::tuner {

struct MeasuredPool;
struct TuningProblem;
struct TuneResult;
class AutoTuner;

/// On-disk journal schema version; bumped on incompatible changes.
/// Resume rejects any other version with a one-line error.
inline constexpr std::int64_t kCheckpointVersion = 1;

/// Raised on journal/session mismatch (configuration skew, replay
/// divergence, version skew); what() is one printable line.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Session identity, written as the first journal record and validated
/// field-by-field on resume.
struct CheckpointHeader {
  std::string algorithm;
  std::string workflow;
  std::string objective;
  std::size_t budget_runs = 0;
  bool history = false;
  std::size_t pool_size = 0;
  /// Order-sensitive FNV-1a hash over the pool's configurations and
  /// measured values — catches resuming against a different pool.
  std::uint64_t pool_fingerprint = 0;
  // Measurement policy (must match exactly; the fault stream depends on
  // every knob).
  double fail_prob = 0.0;
  double outlier_prob = 0.0;
  double outlier_tail = 2.0;
  double deadline_s = 0.0;
  std::size_t max_attempts = 1;
  bool charge_retries = true;
  /// Tuner rng state at tune() entry.
  std::array<std::uint64_t, 4> rng_state{};
};

/// Fingerprint used in CheckpointHeader::pool_fingerprint.
std::uint64_t pool_fingerprint(const MeasuredPool& pool);

/// Rng state as a 4-element array of "0x..." hex words, the journal's
/// encoding for stream positions (JSON numbers only carry 53 exact
/// bits).
json::Value rng_state_to_json(const std::array<std::uint64_t, 4>& state);

/// One Collector measurement as journaled and replayed. The ledger
/// fields are the *totals after* the measurement, not deltas: restoring
/// a total is bitwise exact, while re-adding a rounded delta would not
/// be (float subtraction loses the low bits of the accumulator).
struct MeasureRecord {
  std::size_t pool_index = 0;
  sim::RunStatus status = sim::RunStatus::kOk;
  /// Objective value; 0 when status != kOk (failed runs have no value).
  double value = 0.0;
  std::size_t attempts = 0;
  /// Collector ledger totals after this measurement was charged.
  std::size_t budget_used = 0;
  double cost_exec_s = 0.0;
  double cost_comp_ch = 0.0;
  /// Fault-rng state *after* this measurement's attempt sequence; the
  /// resume handoff restores it so post-crash draws continue the stream.
  std::array<std::uint64_t, 4> fault_rng_state{};
};

/// A live checkpointed (or resuming) session. Attached to a
/// TuningProblem the same way telemetry is: every journaling site in the
/// Collector and the tuners is one null-pointer branch, so sessions
/// without checkpointing are bitwise identical to the pre-checkpoint
/// library.
class CheckpointSession {
 public:
  enum class Mode {
    kStart,   ///< fresh journal (file is created; must be empty/absent)
    kResume,  ///< load an existing journal, truncate a torn tail, replay
  };

  /// Opens (kStart) or loads (kResume) the journal at `journal_path`.
  /// kStart throws CheckpointError when a non-empty journal already
  /// exists (refuse to silently fork a session); kResume throws when the
  /// journal is missing/empty or any complete record is corrupt. A torn
  /// tail is physically truncated away before appending resumes.
  CheckpointSession(std::string journal_path, Mode mode);

  CheckpointSession(const CheckpointSession&) = delete;
  CheckpointSession& operator=(const CheckpointSession&) = delete;

  /// Counters/spans are charged here when set (checkpoint.records,
  /// checkpoint.bytes, checkpoint.flush, resume.replayed_runs).
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// Writes (fresh) or validates (resume) the session header. Must be
  /// the first record call of a session; AutoTuner::tune does this.
  void begin_session(const CheckpointHeader& header);

  /// True while journaled records remain to be replayed.
  bool replaying() const { return cursor_ < records_.size(); }

  /// Number of measurements served from the journal so far.
  std::uint64_t replayed_runs() const { return replayed_runs_; }
  /// Records appended live (not replayed) so far, header included.
  std::uint64_t appended_records() const;
  /// Journal records loaded on resume that have not been replayed yet —
  /// the replay lag of a resumed session (0 once caught up, and always
  /// 0 for a fresh session).
  std::size_t replay_pending() const { return records_.size() - cursor_; }

  /// Replay side of Collector::try_measure: when the next journal record
  /// is a measurement, validates it targets `pool_index`, fills `out`,
  /// advances, and returns true. Returns false when the journal is
  /// exhausted (measure live, then call record_measure). Throws
  /// CheckpointError when the next record is a different kind or a
  /// different index — the replay diverged from the journaled session.
  bool replay_measure(std::size_t pool_index, MeasureRecord& out);

  /// Journals one live measurement.
  void record_measure(const MeasureRecord& record);

  /// Journals (live) or validates (replay) a tuner decision record.
  /// `payload` must carry a "kind" member; byte-equality of the compact
  /// JSON serialisation is the replay check.
  void decision(json::Value payload);

  /// Journals/validates the terminal record summarising the TuneResult.
  void finish_session(const TuneResult& result);

 private:
  void append(const json::Value& payload);
  [[noreturn]] void mismatch(const std::string& why) const;

  std::string path_;
  std::optional<JournalWriter> writer_;
  std::vector<json::Value> records_;  // loaded journal (resume), else empty
  std::size_t cursor_ = 0;            // next record to replay/validate
  std::uint64_t replayed_runs_ = 0;
  std::uint64_t loaded_records_ = 0;
  bool header_done_ = false;
  telemetry::Telemetry* telemetry_ = nullptr;
  /// Test/CI hook: when the environment variable
  /// CEAL_CRASH_AFTER_RECORDS=N is set, the session raises SIGKILL
  /// immediately after the N-th record (header included) reaches the
  /// journal — a real, deterministic mid-session kill for the
  /// kill-resume gate in tools/run_tier1.sh.
  std::uint64_t crash_after_records_ = 0;
};

/// Builds the header for a session about to start: captures `rng`'s
/// current state, the pool fingerprint, and the measurement policy.
CheckpointHeader make_checkpoint_header(const TuningProblem& problem,
                                        const AutoTuner& algorithm,
                                        std::size_t budget_runs,
                                        const ceal::Rng& rng);

}  // namespace ceal::tuner
