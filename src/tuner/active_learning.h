// AL baseline (§7.3): batch active learning. After a random warm-up the
// surrogate is refined iteratively; each iteration measures the batch of
// configurations the current model predicts to perform best
// (exploitation-driven sampling, as in Behzad et al. and Mametjanov et
// al.).
#pragma once

#include "tuner/autotuner.h"

namespace ceal::tuner {

struct ActiveLearningParams {
  std::size_t iterations = 8;
  /// Fraction of the budget spent on the random warm-up batch.
  double init_fraction = 0.25;
};

class ActiveLearning final : public AutoTuner {
 public:
  explicit ActiveLearning(ActiveLearningParams params = {});

  std::string name() const override { return "AL"; }

  std::unique_ptr<TunerStepper> make_stepper(const TuningProblem& problem,
                                             std::size_t budget_runs,
                                             ceal::Rng& rng) const override;

 private:
  ActiveLearningParams params_;
};

}  // namespace ceal::tuner
