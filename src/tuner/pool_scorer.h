// Pool scoring behind one interface, cached or streaming.
//
// The tuners score the whole candidate pool C_pool with the low-fidelity
// combination model and the high-fidelity surrogate on every iteration.
// The cached mode (the default, chunk_rows == 0) materialises the pool's
// feature matrices once per tune() — exactly the PoolFeatures fast path
// the tuners used before, bitwise identical and with no extra telemetry.
// The streaming mode (chunk_rows > 0) never holds more than one
// chunk_rows-sized block of features at a time: every scoring pass
// re-featurizes the pool block by block (tuner/pool_features.h), so a
// pool of millions of configurations is scored in bounded memory — the
// only O(pool) state is the score vector itself (8 bytes/row). Scores
// are bitwise identical between the two modes because featurization and
// both models are row-independent.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "config/config_space.h"
#include "ml/dataset.h"
#include "sim/workflow.h"
#include "tuner/pool_features.h"

namespace ceal::telemetry {
class Telemetry;
}

namespace ceal::tuner {

class LowFidelityModel;
class Surrogate;

class PoolScorer {
 public:
  /// Full scorer (joint + per-component slice features) for tuners that
  /// use the low-fidelity combination model (CEAL). `chunk_rows == 0`
  /// caches the whole pool's features up front; `chunk_rows >= 1`
  /// streams every scoring pass in blocks of that many rows.
  /// `telemetry` (nullable) only receives events in streaming mode.
  PoolScorer(const sim::InSituWorkflow& workflow,
             std::span<const config::Configuration> configs,
             std::size_t chunk_rows, telemetry::Telemetry* telemetry);

  /// Joint-space-only scorer for tuners that never slice per component
  /// (active learning, random search).
  PoolScorer(const config::ConfigSpace& joint_space,
             std::span<const config::Configuration> configs,
             std::size_t chunk_rows, telemetry::Telemetry* telemetry);

  std::size_t size() const { return configs_.size(); }
  bool streaming() const { return chunk_rows_ > 0; }

  /// Surrogate predictions for every pool configuration.
  std::vector<double> surrogate_scores(const Surrogate& surrogate) const;

  /// Low-fidelity combination-model scores for every pool configuration.
  /// Requires the full (workflow) constructor.
  std::vector<double> low_fidelity_scores(const LowFidelityModel& model)
      const;

  /// Joint feature row of one pool configuration (cached: a view into
  /// the pool matrix; streaming: featurized into an internal scratch
  /// row, valid until the next joint_row call).
  std::span<const double> joint_row(std::size_t index) const;

 private:
  const sim::InSituWorkflow* workflow_ = nullptr;  // null in joint-only mode
  const config::ConfigSpace* joint_space_;
  std::span<const config::Configuration> configs_;
  std::size_t chunk_rows_;
  telemetry::Telemetry* telemetry_;

  std::optional<PoolFeatures> cached_;             // full cached mode
  std::optional<ml::FeatureMatrix> cached_joint_;  // joint-only cached mode
  mutable std::vector<double> row_scratch_;        // streaming joint_row
};

}  // namespace ceal::tuner
