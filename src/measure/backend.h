// Pluggable measurement execution backends for the Collector (§2.2).
//
// A backend supplies the *raw run data* of one workflow execution — the
// measured wall-clock seconds and core-hours of the pool row — and
// nothing else. Fault injection, retries, budget charging, checkpoint
// journaling, and every rng draw stay inside the Collector, in request
// order. That split is the determinism contract of the measurement
// plane: because a backend only answers "what did the run at pool row i
// measure" (a value fixed by the pool seed), any dispatch strategy —
// in-process, a subprocess fan-out with hedged stragglers, a crashed
// worker retried on another process — produces bitwise-identical tuning
// sessions. The SubprocessBackend (measure/subprocess.h) leans on this
// hard: worker completion order, hedging, restarts, and even full
// degradation back to in-process execution are invisible in the results.
//
// prefetch() is a pure scheduling hint: the Collector forwards the
// planned batch so a parallel backend can dispatch runs ahead of the
// strictly sequential run() calls. Backends must tolerate run() for an
// index that was never prefetched and prefetch() of an index that is
// never run (a fault top-up can reshape the batch).
#pragma once

#include <cstddef>
#include <span>

#include "tuner/measured_pool.h"

namespace ceal::measure {

/// The raw data of one workflow run at a pool configuration, before the
/// Collector applies faults or derives the objective value.
struct RawRun {
  double exec_s = 0.0;
  double comp_ch = 0.0;
};

class MeasureBackend {
 public:
  virtual ~MeasureBackend() = default;

  /// Stable identifier ("inproc", "subprocess") for telemetry and CLIs.
  virtual const char* name() const = 0;

  /// Scheduling hint: these pool indices are about to be run() in order.
  /// Must not affect any returned value.
  virtual void prefetch(std::span<const std::size_t> indices) {
    (void)indices;
  }

  /// Blocks until the run at `pool_index` is available and returns its
  /// raw data. Must return the pool row bitwise — this is what keeps
  /// every backend's sessions identical.
  virtual RawRun run(std::size_t pool_index) = 0;
};

/// Today's exact behaviour: the pool row, read in the caller's thread.
/// A Collector with a null backend does the same reads inline, so this
/// class exists for symmetry (CLIs construct it when asked for
/// `--measure-backend inproc` explicitly) and as the degradation target
/// of the subprocess plane.
class InProcessBackend final : public MeasureBackend {
 public:
  explicit InProcessBackend(const tuner::MeasuredPool& pool) : pool_(&pool) {}

  const char* name() const override { return "inproc"; }

  RawRun run(std::size_t pool_index) override {
    return RawRun{pool_->exec_s[pool_index], pool_->comp_ch[pool_index]};
  }

 private:
  const tuner::MeasuredPool* pool_;
};

}  // namespace ceal::measure
