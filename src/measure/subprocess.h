// SubprocessBackend: fans measurement batches out to a pool of
// ceal_worker processes (tools/ceal_worker.cc) over pipes, speaking the
// journal-framed wire protocol of measure/wire.h. Robustness-first
// dispatcher semantics (docs/RELIABILITY.md "Distributed measurement
// plane"):
//
//  * Deadline-aware dispatch. Every in-flight run carries its dispatch
//    time. Past `hedge_after_s` the run is *hedged*: a duplicate is
//    dispatched to an idle worker, the first result wins, and the
//    loser's late result is discarded after a config-fingerprint check
//    (counted as measure.hedge_wasted). Past `hang_after_s` the worker
//    is declared hung, SIGKILLed, and restarted; its run is re-queued.
//
//  * Crash/hang detection. Worker EOF, a read error, a corrupt frame,
//    a protocol violation, a fingerprint mismatch, or the hang deadline
//    all count as one worker fault: the process is reaped (SIGKILL +
//    waitpid, idempotent for an already-dead child) and respawned after
//    a deterministic seeded-jitter backoff delay (core/backoff.h). A
//    slot whose restart schedule is exhausted is retired.
//
//  * Graceful degradation. After `degrade_after` consecutive
//    worker-pool faults with no successful result in between — or once
//    every slot is retired — the backend drains the pool and serves all
//    remaining runs in-process, with a loud measure.degraded telemetry
//    event. A degraded session completes with results bitwise-identical
//    to the in-process backend; it never fails the session.
//
// None of this machinery can change a tuning result: a worker only
// reports the pool row it rebuilt from the same seed (validated against
// the dispatcher's pool both per-connection — the hello's pool
// fingerprint — and per-run — the result's row fingerprint), and the
// Collector consumes results strictly in request order. Completion
// order, hedging, restarts, and degradation are visible only in
// measure.* telemetry and wall-clock time.
//
// Fault-injection hooks for tests (read by ceal_worker from its
// environment): CEAL_WORKER_CRASH_AFTER="N" or "IDX:N" makes worker IDX
// (or all workers) SIGKILL itself when it receives its (N+1)-th run
// request; CEAL_WORKER_HANG_AFTER does the same but hangs instead.
//
// Threading: prefetch()/run() must be called from one thread (the
// Collector's, which is the tuner's). One internal reader thread per
// worker moves frames into a completion queue; all dispatch decisions
// happen on the caller's thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/backoff.h"
#include "core/json.h"
#include "measure/backend.h"

namespace ceal::telemetry {
class Telemetry;
}

namespace ceal::measure {

struct SubprocessOptions {
  /// Worker process count; clamped to >= 1.
  std::size_t workers = 4;
  /// Worker binary; empty resolves to "<dir of this executable>/
  /// ceal_worker" (default_worker_bin()).
  std::string worker_bin;
  /// Pool-construction arguments forwarded to every worker verbatim
  /// (e.g. {"--workflow","LV","--pool-size","2000","--pool-seed","1"}).
  /// The worker rebuilds the identical pool and proves it via the hello
  /// fingerprint.
  std::vector<std::string> worker_args;
  /// Straggler threshold: an in-flight run older than this is hedged to
  /// an idle worker.
  double hedge_after_s = 0.25;
  /// Hang deadline: an in-flight run (or a worker that has not said
  /// hello) older than this gets its worker killed and restarted.
  double hang_after_s = 10.0;
  /// Consecutive worker-pool faults (no successful result in between)
  /// that trigger degradation to in-process execution.
  std::size_t degrade_after = 3;
  /// Restart delay schedule per worker slot (real sleeps, seeded
  /// jitter; see core/backoff.h). Short defaults: a worker restart is
  /// cheap next to a real workflow run.
  BackoffPolicy restart_backoff{0.02, 2.0, 0.25, 0.25, 6};
  /// Roots the restart-jitter streams (xor'd with the slot index).
  std::uint64_t seed = 0;
};

/// "<directory of /proc/self/exe>/ceal_worker" — the sibling-binary
/// default used when SubprocessOptions::worker_bin is empty.
std::string default_worker_bin();

/// Dispatcher-side counters, exposed for tests and benches (the same
/// values feed measure.* telemetry when a Telemetry is attached).
struct SubprocessStats {
  std::uint64_t dispatched = 0;    ///< run frames sent (hedges included)
  std::uint64_t completed = 0;     ///< runs resolved by a worker result
  std::uint64_t hedges = 0;        ///< duplicate dispatches for stragglers
  std::uint64_t hedge_wasted = 0;  ///< loser results discarded
  std::uint64_t retries = 0;       ///< runs re-queued after a worker fault
  std::uint64_t restarts = 0;      ///< worker respawns after a fault
  std::uint64_t retired = 0;       ///< slots whose backoff was exhausted
  std::uint64_t local_runs = 0;    ///< runs served in-process (degraded)
  bool degraded = false;
};

class SubprocessBackend final : public MeasureBackend {
 public:
  /// Spawns the worker pool lazily on the first prefetch()/run().
  /// `pool` is the dispatcher's authoritative copy — every worker
  /// result is validated against it bitwise. `telemetry` may be null.
  SubprocessBackend(const tuner::MeasuredPool& pool,
                    SubprocessOptions options,
                    telemetry::Telemetry* telemetry = nullptr);
  ~SubprocessBackend() override;

  SubprocessBackend(const SubprocessBackend&) = delete;
  SubprocessBackend& operator=(const SubprocessBackend&) = delete;

  const char* name() const override { return "subprocess"; }
  void prefetch(std::span<const std::size_t> indices) override;
  RawRun run(std::size_t pool_index) override;

  bool degraded() const { return degraded_; }
  const SubprocessStats& stats() const { return stats_; }

 private:
  struct Worker;
  struct Event;

  void ensure_started();
  bool spawn_worker(std::size_t slot);
  /// SIGKILL + waitpid + reader join; idempotent for a dead child.
  void reap_worker(Worker& worker);
  /// One worker fault: reap, count, requeue its in-flight run, then
  /// restart after backoff (or retire the slot). May degrade.
  void worker_fault(std::size_t slot, const std::string& why);
  void degrade(const std::string& reason);
  /// Drains events / assigns work / enforces deadlines once; waits up
  /// to `wait_s` for an event when there is nothing else to do.
  void pump(double wait_s);
  void handle_event(const Event& event);
  void handle_message(std::size_t slot, const json::Value& payload);
  void dispatch(std::size_t slot, std::size_t index, bool hedge);
  void enqueue_front(std::size_t index);
  std::size_t live_workers() const;

  const tuner::MeasuredPool* pool_;
  SubprocessOptions options_;
  telemetry::Telemetry* telemetry_;
  std::string worker_bin_;

  std::vector<std::unique_ptr<Worker>> workers_;
  bool started_ = false;
  bool degraded_ = false;
  std::size_t consecutive_failures_ = 0;
  std::uint64_t next_request_id_ = 1;

  std::deque<std::size_t> pending_;       ///< indices awaiting a worker
  std::set<std::size_t> queued_;          ///< members of pending_
  std::map<std::size_t, int> outstanding_;  ///< in-flight copies per index
  std::map<std::size_t, RawRun> completed_;

  SubprocessStats stats_;

  // Completion queue: reader threads push, the caller thread drains.
  std::mutex events_mutex_;
  std::condition_variable events_cv_;
  std::deque<Event> events_;
};

}  // namespace ceal::measure
