#include "measure/subprocess.h"

#include <csignal>
#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "core/error.h"
#include "core/telemetry.h"
#include "measure/wire.h"
#include "tuner/checkpoint.h"

extern char** environ;

namespace ceal::measure {

namespace {

using steady_clock = std::chrono::steady_clock;

double seconds_between(steady_clock::time_point from,
                       steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Writing a run frame to a worker that just died must surface as a
/// write error (handled as a worker fault), not kill the dispatcher.
void ignore_sigpipe_once() {
  static const bool done = [] {
    struct sigaction current{};
    if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
        current.sa_handler == SIG_DFL) {
      current.sa_handler = SIG_IGN;
      ::sigaction(SIGPIPE, &current, nullptr);
    }
    return true;
  }();
  (void)done;
}

bool write_all(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

}  // namespace

std::string default_worker_bin() {
  char buffer[4096];
  const ::ssize_t n =
      ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n <= 0) return "ceal_worker";
  buffer[n] = '\0';
  const std::string self(buffer);
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "ceal_worker";
  return self.substr(0, slash + 1) + "ceal_worker";
}

struct SubprocessBackend::Event {
  std::size_t slot = 0;
  std::uint64_t generation = 0;
  bool closed = false;   ///< EOF, read error, or corrupt frame
  std::string error;     ///< why (empty for a clean EOF)
  json::Value payload;   ///< valid when !closed
};

struct SubprocessBackend::Worker {
  Worker(const BackoffPolicy& policy, std::uint64_t seed)
      : backoff(policy, seed) {}

  std::uint64_t generation = 0;  ///< bumped per reap; stale events ignored
  ::pid_t pid = -1;
  int in_fd = -1;   ///< dispatcher -> worker stdin
  int out_fd = -1;  ///< worker stdout -> dispatcher
  std::thread reader;
  FrameWriter writer;
  bool alive = false;
  bool retired = false;  ///< restart schedule exhausted; slot is dead
  bool hello_ok = false;
  bool busy = false;
  std::uint64_t req_id = 0;
  std::size_t req_index = 0;
  bool req_hedge = false;
  steady_clock::time_point started_at{};
  steady_clock::time_point dispatched_at{};
  Backoff backoff;
};

SubprocessBackend::SubprocessBackend(const tuner::MeasuredPool& pool,
                                     SubprocessOptions options,
                                     telemetry::Telemetry* telemetry)
    : pool_(&pool), options_(std::move(options)), telemetry_(telemetry) {
  if (options_.workers == 0) options_.workers = 1;
  worker_bin_ = options_.worker_bin.empty() ? default_worker_bin()
                                            : options_.worker_bin;
}

SubprocessBackend::~SubprocessBackend() {
  for (auto& worker : workers_) {
    if (worker == nullptr) continue;
    if (worker->alive && worker->in_fd >= 0) {
      // Best-effort polite goodbye; the reap below is the guarantee.
      write_all(worker->in_fd, worker->writer.frame(shutdown_message()));
    }
    reap_worker(*worker);
  }
}

std::size_t SubprocessBackend::live_workers() const {
  std::size_t live = 0;
  for (const auto& worker : workers_) {
    if (worker != nullptr && !worker->retired) ++live;
  }
  return live;
}

void SubprocessBackend::ensure_started() {
  if (started_) return;
  started_ = true;
  ignore_sigpipe_once();
  workers_.reserve(options_.workers);
  for (std::size_t slot = 0; slot < options_.workers; ++slot) {
    workers_.push_back(std::make_unique<Worker>(
        options_.restart_backoff, options_.seed ^ (0x5EED0000ULL + slot)));
  }
  for (std::size_t slot = 0; slot < workers_.size() && !degraded_; ++slot) {
    if (spawn_worker(slot)) continue;
    // A slot that cannot even spawn runs the same fault path as a
    // crashed worker: backoff retries, retirement, degradation.
    ++consecutive_failures_;
    if (telemetry_ != nullptr) telemetry_->count("measure.worker_fault");
    if (consecutive_failures_ >= options_.degrade_after) {
      degrade("worker spawn failed " +
              std::to_string(consecutive_failures_) + " time(s): " +
              worker_bin_);
      return;
    }
    worker_fault(slot, "spawn failed");
  }
}

bool SubprocessBackend::spawn_worker(std::size_t slot) {
  Worker& worker = *workers_[slot];
  int in_pipe[2] = {-1, -1};   // dispatcher writes [1], worker stdin [0]
  int out_pipe[2] = {-1, -1};  // worker stdout [1], dispatcher reads [0]
  if (::pipe2(in_pipe, O_CLOEXEC) != 0) return false;
  if (::pipe2(out_pipe, O_CLOEXEC) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    return false;
  }

  std::vector<std::string> args;
  args.push_back(worker_bin_);
  for (const std::string& arg : options_.worker_args) args.push_back(arg);
  args.push_back("--index");
  args.push_back(std::to_string(slot));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  ::posix_spawn_file_actions_t actions;
  ::posix_spawn_file_actions_init(&actions);
  ::posix_spawn_file_actions_adddup2(&actions, in_pipe[0], 0);
  ::posix_spawn_file_actions_adddup2(&actions, out_pipe[1], 1);
  ::pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, worker_bin_.c_str(), &actions, nullptr,
                               argv.data(), environ);
  ::posix_spawn_file_actions_destroy(&actions);
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  if (rc != 0) {
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    return false;
  }

  worker.pid = pid;
  worker.in_fd = in_pipe[1];
  worker.out_fd = out_pipe[0];
  worker.alive = true;
  worker.hello_ok = false;
  worker.busy = false;
  worker.writer = FrameWriter{};
  worker.started_at = steady_clock::now();
  const std::size_t event_slot = slot;
  const std::uint64_t generation = worker.generation;
  const int fd = worker.out_fd;
  worker.reader = std::thread([this, event_slot, generation, fd] {
    FrameReader frames("worker " + std::to_string(event_slot) + " stdout");
    const auto push = [this](Event event) {
      {
        std::lock_guard lock(events_mutex_);
        events_.push_back(std::move(event));
      }
      events_cv_.notify_all();
    };
    char buffer[4096];
    for (;;) {
      const ::ssize_t n = ::read(fd, buffer, sizeof buffer);
      if (n < 0) {
        if (errno == EINTR) continue;
        push(Event{event_slot, generation, true,
                   std::string("read failed: ") + std::strerror(errno), {}});
        return;
      }
      if (n == 0) {
        push(Event{event_slot, generation, true, "", {}});
        return;
      }
      frames.feed(buffer, static_cast<std::size_t>(n));
      try {
        while (std::optional<json::Value> payload = frames.next()) {
          push(Event{event_slot, generation, false, "",
                     std::move(*payload)});
        }
      } catch (const std::exception& e) {
        // A corrupt frame poisons the connection; everything after the
        // first bad byte is untrusted.
        push(Event{event_slot, generation, true, e.what(), {}});
        return;
      }
    }
  });
  return true;
}

void SubprocessBackend::reap_worker(Worker& worker) {
  if (worker.in_fd >= 0) {
    ::close(worker.in_fd);
    worker.in_fd = -1;
  }
  if (worker.pid > 0) {
    ::kill(worker.pid, SIGKILL);
    int status = 0;
    while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
    }
    worker.pid = -1;
  }
  if (worker.reader.joinable()) worker.reader.join();
  if (worker.out_fd >= 0) {
    ::close(worker.out_fd);
    worker.out_fd = -1;
  }
  worker.alive = false;
  worker.hello_ok = false;
  worker.busy = false;
  ++worker.generation;
}

void SubprocessBackend::enqueue_front(std::size_t index) {
  pending_.push_front(index);
  queued_.insert(index);
}

void SubprocessBackend::worker_fault(std::size_t slot,
                                     const std::string& why) {
  Worker& worker = *workers_[slot];
  if (worker.retired) return;
  if (worker.alive) {
    if (worker.busy) {
      // Re-queue the in-flight run unless a hedge twin still carries it
      // or it already completed elsewhere.
      const std::size_t index = worker.req_index;
      worker.busy = false;
      auto it = outstanding_.find(index);
      if (it != outstanding_.end() && --it->second <= 0) {
        outstanding_.erase(it);
        if (completed_.find(index) == completed_.end() &&
            queued_.find(index) == queued_.end()) {
          enqueue_front(index);
          ++stats_.retries;
          if (telemetry_ != nullptr) telemetry_->count("measure.retry");
        }
      }
    }
    reap_worker(worker);
    ++consecutive_failures_;
    if (telemetry_ != nullptr) {
      telemetry_->count("measure.worker_fault");
      telemetry::TraceEvent event("measure.worker_fault");
      event.field("worker", slot).field("why", why.c_str());
      telemetry_->emit(std::move(event));
    }
    if (consecutive_failures_ >= options_.degrade_after) {
      degrade(std::to_string(consecutive_failures_) +
              " consecutive worker-pool failures (last: worker " +
              std::to_string(slot) + ": " + why + ")");
      return;
    }
  }
  // Revive the slot: backoff-delayed respawn attempts until one sticks,
  // the schedule is exhausted (retire), or the pool degrades.
  while (!degraded_) {
    if (worker.backoff.exhausted()) {
      worker.retired = true;
      ++stats_.retired;
      if (telemetry_ != nullptr) telemetry_->count("measure.worker_retired");
      if (live_workers() == 0) degrade("every worker slot retired");
      return;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(worker.backoff.next_delay_s()));
    if (spawn_worker(slot)) {
      ++stats_.restarts;
      if (telemetry_ != nullptr) telemetry_->count("measure.worker_restart");
      return;
    }
    ++consecutive_failures_;
    if (telemetry_ != nullptr) telemetry_->count("measure.worker_fault");
    if (consecutive_failures_ >= options_.degrade_after) {
      degrade("worker spawn failed " +
              std::to_string(consecutive_failures_) + " time(s): " +
              worker_bin_);
      return;
    }
  }
}

void SubprocessBackend::degrade(const std::string& reason) {
  if (degraded_) return;
  degraded_ = true;
  stats_.degraded = true;
  for (auto& worker : workers_) {
    if (worker != nullptr) reap_worker(*worker);
  }
  pending_.clear();
  queued_.clear();
  outstanding_.clear();
  if (telemetry_ != nullptr) {
    telemetry_->count("measure.degraded");
    telemetry::TraceEvent event("measure.degraded");
    event.field("reason", reason.c_str())
        .field("completed_remote", stats_.completed)
        .field("restarts", stats_.restarts);
    telemetry_->emit(std::move(event));
  }
}

void SubprocessBackend::dispatch(std::size_t slot, std::size_t index,
                                 bool hedge) {
  Worker& worker = *workers_[slot];
  const std::uint64_t id = next_request_id_++;
  worker.busy = true;
  worker.req_id = id;
  worker.req_index = index;
  worker.req_hedge = hedge;
  worker.dispatched_at = steady_clock::now();
  ++outstanding_[index];
  ++stats_.dispatched;
  if (telemetry_ != nullptr) telemetry_->count("measure.dispatch");
  if (!write_all(worker.in_fd, worker.writer.frame(run_message(id, index)))) {
    worker_fault(slot, "write to worker stdin failed");
  }
}

void SubprocessBackend::handle_message(std::size_t slot,
                                       const json::Value& payload) {
  Worker& worker = *workers_[slot];
  const std::string& op = message_op(payload);
  if (op == "hello") {
    const HelloMsg hello = parse_hello(payload);
    if (hello.worker != slot) {
      throw WireError("hello from worker " + std::to_string(hello.worker) +
                      " on slot " + std::to_string(slot));
    }
    if (hello.pool_n != pool_->size() ||
        hello.pool_fp != tuner::pool_fingerprint(*pool_)) {
      throw WireError(
          "worker rebuilt a different pool (fingerprint mismatch — "
          "version or seed skew)");
    }
    worker.hello_ok = true;
    return;
  }
  if (op == "pong") {
    (void)parse_ping_id(payload);
    return;
  }
  if (op != "result") {
    throw WireError("unexpected wire op from worker: '" + op + "'");
  }
  const ResultMsg result = parse_result(payload);
  if (!worker.busy || result.id != worker.req_id ||
      result.index != worker.req_index) {
    throw WireError("result does not match the worker's in-flight run");
  }
  worker.busy = false;
  auto it = outstanding_.find(result.index);
  if (it != outstanding_.end() && --it->second <= 0) outstanding_.erase(it);
  if (telemetry_ != nullptr) {
    telemetry_->observe(
        "timing.measure.rtt_s",
        seconds_between(worker.dispatched_at, steady_clock::now()));
  }
  // Bitwise consistency check against the dispatcher's own pool: the
  // worker's row must be the row. Any mismatch means the worker is not
  // measuring the session's pool — a fault, never data.
  const bool matches =
      result.config_fp == config_fingerprint(*pool_, result.index) &&
      bits_equal(result.exec_s, pool_->exec_s[result.index]) &&
      bits_equal(result.comp_ch, pool_->comp_ch[result.index]);
  if (!matches) {
    throw WireError("result row mismatch for pool index " +
                    std::to_string(result.index));
  }
  if (completed_.find(result.index) != completed_.end()) {
    // A hedge twin already won this run; the loser's identical result
    // is discarded.
    ++stats_.hedge_wasted;
    if (telemetry_ != nullptr) telemetry_->count("measure.hedge_wasted");
    return;
  }
  completed_.emplace(result.index, RawRun{result.exec_s, result.comp_ch});
  ++stats_.completed;
  consecutive_failures_ = 0;
  worker.backoff.reset();
}

void SubprocessBackend::handle_event(const Event& event) {
  Worker& worker = *workers_[event.slot];
  if (event.generation != worker.generation || !worker.alive) return;
  if (event.closed) {
    worker_fault(event.slot, event.error.empty()
                                 ? "worker closed its stdout (EOF)"
                                 : event.error);
    return;
  }
  try {
    handle_message(event.slot, event.payload);
  } catch (const WireError& e) {
    worker_fault(event.slot, e.what());
  }
}

void SubprocessBackend::pump(double wait_s) {
  // 1. Drain the completion queue (waiting only when asked to).
  std::deque<Event> drained;
  {
    std::unique_lock lock(events_mutex_);
    if (events_.empty() && wait_s > 0.0) {
      events_cv_.wait_for(lock, std::chrono::duration<double>(wait_s));
    }
    drained.swap(events_);
  }
  for (const Event& event : drained) {
    if (degraded_) return;
    handle_event(event);
  }
  if (degraded_) return;

  // 2. Deadlines: hang detection (including a worker that never said
  //    hello) and hedged duplicate dispatch for stragglers.
  const auto now = steady_clock::now();
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    if (degraded_) return;
    Worker& worker = *workers_[slot];
    if (!worker.alive) continue;
    if (!worker.hello_ok) {
      if (seconds_between(worker.started_at, now) > options_.hang_after_s) {
        worker_fault(slot, "no hello within the hang deadline");
      }
      continue;
    }
    if (!worker.busy) continue;
    const double age = seconds_between(worker.dispatched_at, now);
    if (age > options_.hang_after_s) {
      worker_fault(slot, "run exceeded the hang deadline");
      continue;
    }
    if (age > options_.hedge_after_s) {
      const std::size_t index = worker.req_index;
      if (completed_.find(index) != completed_.end()) continue;
      auto out = outstanding_.find(index);
      if (out != outstanding_.end() && out->second > 1) continue;  // hedged
      for (std::size_t other = 0; other < workers_.size(); ++other) {
        Worker& twin = *workers_[other];
        if (other == slot || !twin.alive || !twin.hello_ok || twin.busy) {
          continue;
        }
        ++stats_.hedges;
        if (telemetry_ != nullptr) telemetry_->count("measure.hedge");
        dispatch(other, index, /*hedge=*/true);
        break;
      }
    }
  }
  if (degraded_) return;

  // 3. Hand pending runs to idle ready workers.
  for (std::size_t slot = 0; slot < workers_.size() && !pending_.empty();
       ++slot) {
    if (degraded_) return;
    Worker& worker = *workers_[slot];
    if (!worker.alive || !worker.hello_ok || worker.busy) continue;
    const std::size_t index = pending_.front();
    pending_.pop_front();
    queued_.erase(index);
    if (completed_.find(index) != completed_.end()) continue;
    dispatch(slot, index, /*hedge=*/false);
  }
}

void SubprocessBackend::prefetch(std::span<const std::size_t> indices) {
  ensure_started();
  if (degraded_) return;
  for (const std::size_t index : indices) {
    CEAL_EXPECT(index < pool_->size());
    if (completed_.find(index) != completed_.end()) continue;
    if (queued_.find(index) != queued_.end()) continue;
    if (outstanding_.find(index) != outstanding_.end()) continue;
    pending_.push_back(index);
    queued_.insert(index);
  }
  // Opportunistic, non-blocking: pick up hellos and hand out work now;
  // the blocking waits happen in run().
  pump(0.0);
}

RawRun SubprocessBackend::run(std::size_t pool_index) {
  CEAL_EXPECT(pool_index < pool_->size());
  ensure_started();
  if (!degraded_) {
    if (completed_.find(pool_index) == completed_.end() &&
        queued_.find(pool_index) == queued_.end() &&
        outstanding_.find(pool_index) == outstanding_.end()) {
      enqueue_front(pool_index);
    }
    while (!degraded_ &&
           completed_.find(pool_index) == completed_.end()) {
      pump(0.02);
    }
  }
  if (degraded_) {
    auto done = completed_.find(pool_index);
    if (done != completed_.end()) {
      const RawRun raw = done->second;
      completed_.erase(done);
      return raw;
    }
    ++stats_.local_runs;
    if (telemetry_ != nullptr) telemetry_->count("measure.local_run");
    return RawRun{pool_->exec_s[pool_index], pool_->comp_ch[pool_index]};
  }
  auto done = completed_.find(pool_index);
  const RawRun raw = done->second;
  completed_.erase(done);
  return raw;
}

}  // namespace ceal::measure
