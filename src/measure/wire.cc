#include "measure/wire.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/error.h"
#include "tuner/measured_pool.h"

namespace ceal::measure {

namespace {

// Hex encodings shared with the checkpoint journal: doubles as C99 "%a"
// strings (exact bitwise round-trip through text), 64-bit words as
// "0x..." strings (JSON numbers only carry 53 exact bits).

json::Value hex_double(double v) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%a", v);
  return json::Value::string(buffer);
}

json::Value hex_u64(std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "0x%llx",
                static_cast<unsigned long long>(v));
  return json::Value::string(buffer);
}

const json::Value& member(const json::Value& payload, const char* key) {
  if (!payload.is_object()) {
    throw WireError("wire message is not a JSON object");
  }
  const json::Value* v = payload.find(key);
  if (v == nullptr) {
    throw WireError(std::string("wire message is missing '") + key + "'");
  }
  return *v;
}

double parse_hex_double(const json::Value& payload, const char* key) {
  const json::Value& v = member(payload, key);
  try {
    const std::string& text = v.as_string();
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
      throw WireError(std::string("malformed hex float in wire '") + key +
                      "': '" + text + "'");
    }
    return parsed;
  } catch (const WireError&) {
    throw;
  } catch (const std::exception&) {
    throw WireError(std::string("wire '") + key + "' is not a string");
  }
}

std::uint64_t parse_hex_u64_field(const json::Value& payload,
                                  const char* key) {
  const json::Value& v = member(payload, key);
  std::string text;
  try {
    text = v.as_string();
  } catch (const std::exception&) {
    throw WireError(std::string("wire '") + key + "' is not a string");
  }
  if (text.size() < 3 || text[0] != '0' || text[1] != 'x') {
    throw WireError(std::string("malformed hex word in wire '") + key +
                    "': '" + text + "'");
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 16);
  if (*end != '\0') {
    throw WireError(std::string("malformed hex word in wire '") + key +
                    "': '" + text + "'");
  }
  return static_cast<std::uint64_t>(parsed);
}

std::uint64_t parse_u64(const json::Value& payload, const char* key) {
  const json::Value& v = member(payload, key);
  try {
    const std::int64_t n = v.as_int();
    if (n < 0) {
      throw WireError(std::string("wire '") + key + "' is negative");
    }
    return static_cast<std::uint64_t>(n);
  } catch (const WireError&) {
    throw;
  } catch (const std::exception&) {
    throw WireError(std::string("wire '") + key + "' is not an integer");
  }
}

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a_double(std::uint64_t hash, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return fnv1a(hash, bits);
}

}  // namespace

std::uint64_t config_fingerprint(const tuner::MeasuredPool& pool,
                                 std::size_t index) {
  CEAL_EXPECT(index < pool.size());
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const int value : pool.configs[index]) {
    hash = fnv1a(hash, static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(value)));
  }
  hash = fnv1a_double(hash, pool.exec_s[index]);
  hash = fnv1a_double(hash, pool.comp_ch[index]);
  return hash;
}

std::optional<json::Value> FrameReader::next() {
  const std::size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  // One complete line: validate it with the journal reader end-to-end
  // (magic, this connection's next sequence number, length, CRC, JSON).
  const std::string_view line(buffer_.data(), nl + 1);
  JournalReadResult parsed = read_journal_text(line, name_, next_seq_);
  // A complete line either validates to exactly one record or throws.
  CEAL_EXPECT(parsed.records.size() == 1 && !parsed.torn_tail);
  json::Value payload = std::move(parsed.records.front());
  buffer_.erase(0, nl + 1);
  ++next_seq_;
  return payload;
}

json::Value hello_message(std::size_t worker, std::int64_t pid,
                          std::size_t pool_n, std::uint64_t pool_fp) {
  json::Value msg = json::Value::object();
  msg.set("op", json::Value::string("hello"));
  msg.set("worker", json::Value::number(static_cast<std::uint64_t>(worker)));
  msg.set("pid", json::Value::number(static_cast<std::int64_t>(pid)));
  msg.set("pool_n", json::Value::number(static_cast<std::uint64_t>(pool_n)));
  msg.set("pool_fp", hex_u64(pool_fp));
  return msg;
}

json::Value run_message(std::uint64_t id, std::size_t index) {
  json::Value msg = json::Value::object();
  msg.set("op", json::Value::string("run"));
  msg.set("id", json::Value::number(id));
  msg.set("index", json::Value::number(static_cast<std::uint64_t>(index)));
  return msg;
}

json::Value result_message(std::uint64_t id, std::size_t index,
                           std::uint64_t config_fp, double exec_s,
                           double comp_ch) {
  json::Value msg = json::Value::object();
  msg.set("op", json::Value::string("result"));
  msg.set("id", json::Value::number(id));
  msg.set("index", json::Value::number(static_cast<std::uint64_t>(index)));
  msg.set("fp", hex_u64(config_fp));
  msg.set("exec_s", hex_double(exec_s));
  msg.set("comp_ch", hex_double(comp_ch));
  return msg;
}

json::Value ping_message(std::uint64_t id) {
  json::Value msg = json::Value::object();
  msg.set("op", json::Value::string("ping"));
  msg.set("id", json::Value::number(id));
  return msg;
}

json::Value pong_message(std::uint64_t id) {
  json::Value msg = json::Value::object();
  msg.set("op", json::Value::string("pong"));
  msg.set("id", json::Value::number(id));
  return msg;
}

json::Value shutdown_message() {
  json::Value msg = json::Value::object();
  msg.set("op", json::Value::string("shutdown"));
  return msg;
}

const std::string& message_op(const json::Value& payload) {
  const json::Value& op = member(payload, "op");
  try {
    return op.as_string();
  } catch (const std::exception&) {
    throw WireError("wire 'op' is not a string");
  }
}

HelloMsg parse_hello(const json::Value& payload) {
  HelloMsg msg;
  msg.worker = static_cast<std::size_t>(parse_u64(payload, "worker"));
  msg.pid = static_cast<std::int64_t>(parse_u64(payload, "pid"));
  msg.pool_n = static_cast<std::size_t>(parse_u64(payload, "pool_n"));
  msg.pool_fp = parse_hex_u64_field(payload, "pool_fp");
  return msg;
}

RunMsg parse_run(const json::Value& payload) {
  RunMsg msg;
  msg.id = parse_u64(payload, "id");
  msg.index = static_cast<std::size_t>(parse_u64(payload, "index"));
  return msg;
}

ResultMsg parse_result(const json::Value& payload) {
  ResultMsg msg;
  msg.id = parse_u64(payload, "id");
  msg.index = static_cast<std::size_t>(parse_u64(payload, "index"));
  msg.config_fp = parse_hex_u64_field(payload, "fp");
  msg.exec_s = parse_hex_double(payload, "exec_s");
  msg.comp_ch = parse_hex_double(payload, "comp_ch");
  return msg;
}

std::uint64_t parse_ping_id(const json::Value& payload) {
  return parse_u64(payload, "id");
}

}  // namespace ceal::measure
