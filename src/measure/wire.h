// Wire protocol between the SubprocessBackend dispatcher and ceal_worker
// processes: length-prefixed, CRC-framed JSON records over pipes.
//
// The framing *is* the journal record format (core/journal.h) — each
// direction of a worker connection is an append-only record stream
//
//   J1 <seq> <len> <crc32> <payload>\n
//
// with its own 0-based sequence numbering, so the wire inherits the
// journal reader's validation wholesale: magic, in-order sequence, exact
// declared length, CRC, well-formed JSON object. A worker that emits a
// torn, reordered, or bit-flipped frame is detected at the first bad
// byte and treated as a worker fault (kill + restart), never as data.
//
// Payloads are compact JSON objects with an "op" member:
//
//   hello    worker -> dispatcher  {"op":"hello","worker":I,"pid":P,
//                                   "pool_n":N,"pool_fp":"0x..."}
//   run      dispatcher -> worker  {"op":"run","id":R,"index":I}
//   result   worker -> dispatcher  {"op":"result","id":R,"index":I,
//                                   "fp":"0x...","exec_s":"<hex float>",
//                                   "comp_ch":"<hex float>"}
//   ping     dispatcher -> worker  {"op":"ping","id":R}
//   pong     worker -> dispatcher  {"op":"pong","id":R}
//   shutdown dispatcher -> worker  {"op":"shutdown"}
//
// Doubles travel as C99 "%a" hex-float strings (bitwise-exact text
// round-trip, the journal's own policy); 64-bit fingerprints as "0x..."
// hex words. The hello's pool_fp is tuner::pool_fingerprint over the
// worker's independently rebuilt pool — a worker that reconstructed a
// different pool (version or seed skew) is rejected before it serves a
// single run. Each result carries config_fingerprint of its row, the
// hedging dedup/consistency check.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/journal.h"
#include "core/json.h"

namespace ceal::tuner {
struct MeasuredPool;
}

namespace ceal::measure {

/// Raised on a syntactically valid frame whose payload is not a valid
/// protocol message; what() is one printable line. (Frame-level damage
/// raises JournalError from the framing layer instead.) Both are worker
/// faults to the dispatcher.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Order-sensitive FNV-1a over one pool row: the configuration's
/// parameter values and the measured exec_s / comp_ch bit patterns.
/// Carried in every result frame so a hedged duplicate (or a confused
/// worker) is matched against the exact row the dispatcher asked for.
std::uint64_t config_fingerprint(const tuner::MeasuredPool& pool,
                                 std::size_t index);

/// Frames outbound payloads with this connection direction's sequence
/// numbering.
class FrameWriter {
 public:
  /// The exact bytes to write for `payload` (trailing newline included).
  std::string frame(const json::Value& payload) {
    return frame_journal_record(next_seq_++, payload.dump());
  }

  std::uint64_t frames() const { return next_seq_; }

 private:
  std::uint64_t next_seq_ = 0;
};

/// Incremental frame parser over a byte stream. Feed bytes as they
/// arrive; next() yields each complete validated payload in order.
/// `name` labels errors ("worker 3 stdout").
class FrameReader {
 public:
  explicit FrameReader(std::string name) : name_(std::move(name)) {}

  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

  /// The next complete payload, or nullopt when the buffer holds only a
  /// partial frame. Throws JournalError on any corrupt complete frame
  /// (including an out-of-order sequence number).
  std::optional<json::Value> next();

  /// Frames validated so far.
  std::uint64_t frames() const { return next_seq_; }

  /// Bytes buffered but not yet consumed by a complete frame.
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string name_;
  std::string buffer_;
  std::uint64_t next_seq_ = 0;
};

// --- Message builders (compact JSON payloads, deterministic bytes). ---

json::Value hello_message(std::size_t worker, std::int64_t pid,
                          std::size_t pool_n, std::uint64_t pool_fp);
json::Value run_message(std::uint64_t id, std::size_t index);
json::Value result_message(std::uint64_t id, std::size_t index,
                           std::uint64_t config_fp, double exec_s,
                           double comp_ch);
json::Value ping_message(std::uint64_t id);
json::Value pong_message(std::uint64_t id);
json::Value shutdown_message();

// --- Message parsers. All throw WireError on a missing/mistyped field. -

/// The "op" member of a payload.
const std::string& message_op(const json::Value& payload);

struct HelloMsg {
  std::size_t worker = 0;
  std::int64_t pid = 0;
  std::size_t pool_n = 0;
  std::uint64_t pool_fp = 0;
};
HelloMsg parse_hello(const json::Value& payload);

struct RunMsg {
  std::uint64_t id = 0;
  std::size_t index = 0;
};
RunMsg parse_run(const json::Value& payload);

struct ResultMsg {
  std::uint64_t id = 0;
  std::size_t index = 0;
  std::uint64_t config_fp = 0;
  double exec_s = 0.0;
  double comp_ch = 0.0;
};
ResultMsg parse_result(const json::Value& payload);

/// The "id" member of a ping/pong.
std::uint64_t parse_ping_id(const json::Value& payload);

}  // namespace ceal::measure
