// Composition of per-component configuration spaces into one workflow
// space (paper §2.3: "all parameters from all components must be
// considered together").
//
// The joint space concatenates each component's parameters (renamed
// "component.param"), enforces every component-level constraint on its
// slice, and optionally enforces a workflow-level constraint (e.g. the
// total node demand must fit the 32-node allocation).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "config/config_space.h"

namespace ceal::config {

class CompositeSpace {
 public:
  struct Component {
    std::string name;
    ConfigSpace space;
  };

  /// Predicate over the *joint* configuration.
  using JointConstraint = ConfigSpace::Constraint;

  /// `components` must be non-empty.
  CompositeSpace(std::vector<Component> components,
                 JointConstraint workflow_constraint = {});

  /// The flattened space all tuners operate on. Its validity test already
  /// includes component and workflow constraints.
  const ConfigSpace& joint() const { return *joint_; }

  std::size_t component_count() const { return components_->size(); }
  const std::string& component_name(std::size_t j) const;
  const ConfigSpace& component_space(std::size_t j) const;

  /// Half-open [begin, end) positions of component j inside a joint
  /// configuration.
  std::pair<std::size_t, std::size_t> slice_range(std::size_t j) const;

  /// Extracts component j's sub-configuration ("c_j" in the paper).
  Configuration slice(const Configuration& joint_config, std::size_t j) const;

  /// Concatenates one configuration per component into a joint one.
  Configuration join(const std::vector<Configuration>& parts) const;

 private:
  struct Stored {
    std::string name;
    ConfigSpace space;
    std::size_t begin;
    std::size_t end;
  };

  // Shared with the joint constraint closure, so CompositeSpace objects
  // stay movable without dangling captures.
  std::shared_ptr<const std::vector<Stored>> components_;
  std::shared_ptr<const ConfigSpace> joint_;
};

}  // namespace ceal::config
