#include "config/config_space.h"

#include <limits>
#include <sstream>

#include "core/error.h"

namespace ceal::config {

ConfigSpace::ConfigSpace(std::vector<Parameter> params, Constraint constraint)
    : params_(std::move(params)), constraint_(std::move(constraint)) {
  CEAL_EXPECT_MSG(!params_.empty(), "config space needs parameters");
  raw_size_ = 1;
  for (const auto& p : params_) {
    CEAL_EXPECT_MSG(
        raw_size_ <= std::numeric_limits<std::uint64_t>::max() /
                         p.cardinality(),
        "config space size overflows uint64");
    raw_size_ *= p.cardinality();
  }
}

const Parameter& ConfigSpace::parameter(std::size_t i) const {
  CEAL_EXPECT(i < params_.size());
  return params_[i];
}

std::size_t ConfigSpace::parameter_index(std::string_view name) const {
  for (std::size_t i = 0; i < params_.size(); ++i)
    if (params_[i].name() == name) return i;
  throw PreconditionError("no parameter named " + std::string(name));
}

int ConfigSpace::value_of(const Configuration& c,
                          std::string_view name) const {
  CEAL_EXPECT(c.size() == params_.size());
  return c[parameter_index(name)];
}

Configuration ConfigSpace::at(std::uint64_t flat_index) const {
  CEAL_EXPECT(flat_index < raw_size_);
  Configuration c(params_.size());
  // Mixed-radix decode, last parameter fastest.
  for (std::size_t i = params_.size(); i-- > 0;) {
    const std::uint64_t card = params_[i].cardinality();
    c[i] = params_[i].value(static_cast<std::size_t>(flat_index % card));
    flat_index /= card;
  }
  return c;
}

std::uint64_t ConfigSpace::flat_index(const Configuration& c) const {
  CEAL_EXPECT(c.size() == params_.size());
  std::uint64_t idx = 0;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    idx = idx * params_[i].cardinality() + params_[i].index_of(c[i]);
  }
  return idx;
}

bool ConfigSpace::is_valid(const Configuration& c) const {
  if (c.size() != params_.size()) return false;
  for (std::size_t i = 0; i < params_.size(); ++i)
    if (!params_[i].contains(c[i])) return false;
  return !constraint_ || constraint_(c);
}

Configuration ConfigSpace::random_valid(ceal::Rng& rng,
                                        std::size_t max_attempts) const {
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    Configuration c = at(rng.uniform_u64(raw_size_));
    if (!constraint_ || constraint_(c)) return c;
  }
  throw InvariantError(
      "random_valid: constraint rejected every draw; space nearly empty?");
}

std::vector<Configuration> ConfigSpace::sample_valid(ceal::Rng& rng,
                                                     std::size_t n) const {
  std::vector<Configuration> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(random_valid(rng));
  return out;
}

std::uint64_t ConfigSpace::count_valid_exact(std::uint64_t limit) const {
  CEAL_EXPECT_MSG(raw_size_ <= limit,
                  "space too large for exact counting; use "
                  "estimate_valid_fraction");
  if (!constraint_) return raw_size_;
  std::uint64_t count = 0;
  for (std::uint64_t i = 0; i < raw_size_; ++i)
    if (constraint_(at(i))) ++count;
  return count;
}

double ConfigSpace::estimate_valid_fraction(ceal::Rng& rng,
                                            std::size_t samples) const {
  CEAL_EXPECT(samples > 0);
  if (!constraint_) return 1.0;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < samples; ++i)
    if (constraint_(at(rng.uniform_u64(raw_size_)))) ++valid;
  return static_cast<double>(valid) / static_cast<double>(samples);
}

std::vector<Configuration> ConfigSpace::neighbors(
    const Configuration& c) const {
  CEAL_EXPECT(is_valid(c));
  std::vector<Configuration> out;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const std::size_t idx = params_[i].index_of(c[i]);
    for (const int step : {-1, +1}) {
      if (step < 0 && idx == 0) continue;
      const std::size_t j = idx + static_cast<std::size_t>(step);
      if (j >= params_[i].cardinality()) continue;
      Configuration n = c;
      n[i] = params_[i].value(j);
      if (is_valid(n)) out.push_back(std::move(n));
    }
  }
  return out;
}

std::vector<double> ConfigSpace::features(const Configuration& c) const {
  CEAL_EXPECT(c.size() == params_.size());
  std::vector<double> f(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) f[i] = static_cast<double>(c[i]);
  return f;
}

std::string to_string(const Configuration& c) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i) os << ", ";
    os << c[i];
  }
  os << ')';
  return os.str();
}

}  // namespace ceal::config
