// A named, ordered, finite set of integer parameter values.
//
// All tunables in the paper's workflows (process counts, processes per
// node, thread counts, buffer sizes, output counts) are integers drawn
// from explicit ranges (Table 1), so Parameter stores an ordered list of
// distinct ints and supports value<->index mapping.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ceal::config {

class Parameter {
 public:
  /// `values` must be non-empty, strictly increasing.
  Parameter(std::string name, std::vector<int> values);

  /// Inclusive arithmetic range {lo, lo+step, ..., <= hi}. step > 0.
  static Parameter range(std::string name, int lo, int hi, int step = 1);

  const std::string& name() const { return name_; }
  std::size_t cardinality() const { return values_.size(); }
  const std::vector<int>& values() const { return values_; }

  /// Value at ordinal position `idx` (< cardinality()).
  int value(std::size_t idx) const;

  /// Ordinal position of `value`; throws PreconditionError if absent.
  std::size_t index_of(int value) const;

  bool contains(int value) const;

 private:
  std::string name_;
  std::vector<int> values_;
};

}  // namespace ceal::config
