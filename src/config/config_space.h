// Cartesian integer configuration grids with validity constraints.
//
// A ConfigSpace is the cross product of its Parameters, optionally
// filtered by a constraint predicate (e.g. "ceil(procs/ppn) <= 31 nodes").
// Configurations are stored as the concrete parameter *values* (not
// ordinals) so they read naturally in logs and match the paper's tables.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "config/parameter.h"
#include "core/rng.h"

namespace ceal::config {

/// One point of a ConfigSpace: the value of each parameter, by position.
using Configuration = std::vector<int>;

class ConfigSpace {
 public:
  /// Returns true when a configuration is admissible.
  using Constraint = std::function<bool(const Configuration&)>;

  /// `params` must be non-empty. `constraint` may be empty (all valid).
  explicit ConfigSpace(std::vector<Parameter> params,
                       Constraint constraint = {});

  std::size_t dimension() const { return params_.size(); }
  const Parameter& parameter(std::size_t i) const;
  const std::vector<Parameter>& parameters() const { return params_; }

  /// Position of the parameter with this name; throws if absent.
  std::size_t parameter_index(std::string_view name) const;

  /// Value of the named parameter inside `c`.
  int value_of(const Configuration& c, std::string_view name) const;

  /// Product of parameter cardinalities (ignores the constraint).
  std::uint64_t raw_size() const { return raw_size_; }

  /// Configuration at a mixed-radix flat index in [0, raw_size()).
  /// Ignores the constraint.
  Configuration at(std::uint64_t flat_index) const;

  /// Flat index of a configuration (inverse of at()).
  std::uint64_t flat_index(const Configuration& c) const;

  /// True iff every value is in its parameter's domain and the constraint
  /// (if any) accepts the configuration.
  bool is_valid(const Configuration& c) const;

  /// Uniformly random *valid* configuration via rejection sampling.
  /// Throws InvariantError after `max_attempts` consecutive rejections
  /// (which indicates a near-empty constraint).
  Configuration random_valid(ceal::Rng& rng,
                             std::size_t max_attempts = 100000) const;

  /// `n` independent uniformly random valid configurations (duplicates
  /// possible, as in the paper's random pools).
  std::vector<Configuration> sample_valid(ceal::Rng& rng, std::size_t n) const;

  /// Exact number of valid configurations by full enumeration.
  /// Requires raw_size() <= limit (guards accidental huge scans).
  std::uint64_t count_valid_exact(std::uint64_t limit = 5'000'000) const;

  /// Monte-Carlo estimate of the valid fraction from `samples` draws.
  double estimate_valid_fraction(ceal::Rng& rng, std::size_t samples) const;

  /// Valid configurations reachable from `c` by moving exactly one
  /// parameter one ordinal step up or down (the GEIST parameter graph).
  std::vector<Configuration> neighbors(const Configuration& c) const;

  /// Encodes a configuration as ML features (plain value casts).
  std::vector<double> features(const Configuration& c) const;

 private:
  std::vector<Parameter> params_;
  Constraint constraint_;
  std::uint64_t raw_size_;
};

/// Renders "(v0, v1, ...)" for logs and tables.
std::string to_string(const Configuration& c);

}  // namespace ceal::config
