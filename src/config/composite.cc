#include "config/composite.h"

#include "core/error.h"

namespace ceal::config {

CompositeSpace::CompositeSpace(std::vector<Component> components,
                               JointConstraint workflow_constraint) {
  CEAL_EXPECT_MSG(!components.empty(), "composite space needs components");

  std::vector<Parameter> joint_params;
  std::vector<Stored> stored;
  std::size_t offset = 0;
  for (auto& comp : components) {
    const std::size_t dim = comp.space.dimension();
    for (std::size_t i = 0; i < dim; ++i) {
      const Parameter& p = comp.space.parameter(i);
      joint_params.emplace_back(comp.name + "." + p.name(), p.values());
    }
    stored.push_back(Stored{std::move(comp.name), std::move(comp.space),
                            offset, offset + dim});
    offset += dim;
  }

  components_ =
      std::make_shared<const std::vector<Stored>>(std::move(stored));

  // The joint constraint checks each component slice against its own
  // space, then the workflow-level predicate. It shares ownership of the
  // component table so moving CompositeSpace cannot dangle it.
  auto constraint = [comps = components_, wf = std::move(workflow_constraint)](
                        const Configuration& c) {
    for (const auto& comp : *comps) {
      Configuration part(c.begin() + static_cast<std::ptrdiff_t>(comp.begin),
                         c.begin() + static_cast<std::ptrdiff_t>(comp.end));
      if (!comp.space.is_valid(part)) return false;
    }
    return !wf || wf(c);
  };

  joint_ = std::make_shared<const ConfigSpace>(std::move(joint_params),
                                               std::move(constraint));
}

const std::string& CompositeSpace::component_name(std::size_t j) const {
  CEAL_EXPECT(j < components_->size());
  return (*components_)[j].name;
}

const ConfigSpace& CompositeSpace::component_space(std::size_t j) const {
  CEAL_EXPECT(j < components_->size());
  return (*components_)[j].space;
}

std::pair<std::size_t, std::size_t> CompositeSpace::slice_range(
    std::size_t j) const {
  CEAL_EXPECT(j < components_->size());
  return {(*components_)[j].begin, (*components_)[j].end};
}

Configuration CompositeSpace::slice(const Configuration& joint_config,
                                    std::size_t j) const {
  CEAL_EXPECT(j < components_->size());
  CEAL_EXPECT(joint_config.size() == joint_->dimension());
  const auto& comp = (*components_)[j];
  return Configuration(
      joint_config.begin() + static_cast<std::ptrdiff_t>(comp.begin),
      joint_config.begin() + static_cast<std::ptrdiff_t>(comp.end));
}

Configuration CompositeSpace::join(
    const std::vector<Configuration>& parts) const {
  CEAL_EXPECT(parts.size() == components_->size());
  Configuration joint;
  joint.reserve(joint_->dimension());
  for (std::size_t j = 0; j < parts.size(); ++j) {
    CEAL_EXPECT(parts[j].size() ==
                (*components_)[j].end - (*components_)[j].begin);
    joint.insert(joint.end(), parts[j].begin(), parts[j].end());
  }
  return joint;
}

}  // namespace ceal::config
