#include "config/parameter.h"

#include <algorithm>

#include "core/error.h"

namespace ceal::config {

Parameter::Parameter(std::string name, std::vector<int> values)
    : name_(std::move(name)), values_(std::move(values)) {
  CEAL_EXPECT_MSG(!name_.empty(), "parameter needs a name");
  CEAL_EXPECT_MSG(!values_.empty(), "parameter needs at least one value");
  CEAL_EXPECT_MSG(std::adjacent_find(values_.begin(), values_.end(),
                                     [](int a, int b) { return a >= b; }) ==
                      values_.end(),
                  "parameter values must be strictly increasing");
}

Parameter Parameter::range(std::string name, int lo, int hi, int step) {
  CEAL_EXPECT(step > 0);
  CEAL_EXPECT(lo <= hi);
  std::vector<int> values;
  values.reserve(static_cast<std::size_t>((hi - lo) / step) + 1);
  for (int v = lo; v <= hi; v += step) values.push_back(v);
  return Parameter(std::move(name), std::move(values));
}

int Parameter::value(std::size_t idx) const {
  CEAL_EXPECT(idx < values_.size());
  return values_[idx];
}

std::size_t Parameter::index_of(int value) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), value);
  CEAL_EXPECT_MSG(it != values_.end() && *it == value,
                  "value not in parameter domain: " + name_);
  return static_cast<std::size_t>(it - values_.begin());
}

bool Parameter::contains(int value) const {
  return std::binary_search(values_.begin(), values_.end(), value);
}

}  // namespace ceal::config
