// Benchmark of the distributed measurement plane (measure/subprocess.h):
// a SubprocessBackend dispatching batches of pool rows to real
// ceal_worker processes, swept over worker counts, injected fault
// rates, and straggler severities. Reports sustained dispatch
// throughput, the hedge rate, restart counts, and per-run round-trip
// quantiles as custom counters, which ceal_report extracts as
// bench.<name>.runs_per_second etc.
//
// Wall-clock numbers here measure the *dispatcher*, not the simulated
// workflow: a pool-row lookup is microseconds, so throughput is
// dominated by pipe round-trips, process restarts, and deadline
// machinery — exactly the overhead the plane promises to keep off the
// tuning session's critical path.
//
// Besides the console table, the run writes machine-readable results to
// BENCH_measure_plane.json in the working directory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/stats.h"
#include "measure/subprocess.h"
#include "sim/workloads.h"
#include "tuner/measured_pool.h"

namespace {

using namespace ceal;

constexpr std::size_t kPoolSize = 96;
constexpr std::uint32_t kPoolSeed = 1;
constexpr std::size_t kRunsPerIteration = 64;

const tuner::MeasuredPool& shared_pool() {
  static const sim::Workload wl = sim::make_lv();
  static const tuner::MeasuredPool pool =
      tuner::measure_pool(wl.workflow, kPoolSize, kPoolSeed);
  return pool;
}

measure::SubprocessOptions make_options(std::size_t workers) {
  measure::SubprocessOptions options;
  options.workers = workers;
  options.worker_bin = CEAL_WORKER_BIN;
  options.worker_args = {"--workflow", "LV",
                         "--pool-size", std::to_string(kPoolSize),
                         "--pool-seed", std::to_string(kPoolSeed)};
  options.seed = 17;
  return options;
}

struct PlaneRun {
  measure::SubprocessStats stats;
  std::vector<double> rtt_ms;
  double wall_s = 0.0;
};

// Drives kRunsPerIteration rows through one backend instance (prefetch
// then sequential run(), the Collector's exact calling pattern).
PlaneRun drive(const measure::SubprocessOptions& options) {
  measure::SubprocessBackend backend(shared_pool(), options);
  std::vector<std::size_t> batch;
  for (std::size_t i = 0; i < kRunsPerIteration; ++i) {
    batch.push_back(i % kPoolSize);
  }
  PlaneRun out;
  const auto wall_start = std::chrono::steady_clock::now();
  backend.prefetch(batch);
  for (const std::size_t index : batch) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(backend.run(index));
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    out.rtt_ms.push_back(elapsed.count() * 1e3);
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  out.wall_s = wall.count();
  out.stats = backend.stats();
  return out;
}

void report(benchmark::State& state, const PlaneRun& last,
            std::size_t total_runs, double total_wall_s) {
  state.counters["runs_per_second"] =
      total_wall_s > 0.0 ? static_cast<double>(total_runs) / total_wall_s
                         : 0.0;
  state.counters["hedge_rate"] =
      last.stats.dispatched > 0
          ? static_cast<double>(last.stats.hedges) /
                static_cast<double>(last.stats.dispatched)
          : 0.0;
  state.counters["restarts"] = static_cast<double>(last.stats.restarts);
  state.counters["retries"] = static_cast<double>(last.stats.retries);
  state.counters["rtt_p50_ms"] = quantile(last.rtt_ms, 0.50);
  state.counters["rtt_p99_ms"] = quantile(last.rtt_ms, 0.99);
}

// Scoped fault-injection hook for the spawned workers.
class ScopedEnv {
 public:
  ScopedEnv(const char* key, const std::string& value) : key_(key) {
    ::setenv(key, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(key_); }

 private:
  const char* key_;
};

// Clean fan-out across worker counts: the scaling axis.
void BM_MeasurePlaneWorkers(benchmark::State& state) {
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  PlaneRun last;
  std::size_t total_runs = 0;
  double total_wall_s = 0.0;
  for (auto _ : state) {
    last = drive(make_options(workers));
    total_runs += kRunsPerIteration;
    total_wall_s += last.wall_s;
  }
  state.counters["workers"] = static_cast<double>(workers);
  report(state, last, total_runs, total_wall_s);
}
BENCHMARK(BM_MeasurePlaneWorkers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Fault weather: every worker crashes after serving Arg runs, forever
// (restart + re-queue churn); Arg 0 disables injection as the control.
void BM_MeasurePlaneCrashes(benchmark::State& state) {
  const std::size_t crash_after = static_cast<std::size_t>(state.range(0));
  PlaneRun last;
  std::size_t total_runs = 0;
  double total_wall_s = 0.0;
  for (auto _ : state) {
    measure::SubprocessOptions options = make_options(4);
    options.restart_backoff.initial_s = 0.001;
    options.restart_backoff.max_s = 0.01;
    if (crash_after > 0) {
      ScopedEnv crash("CEAL_WORKER_CRASH_AFTER", std::to_string(crash_after));
      last = drive(options);
    } else {
      last = drive(options);
    }
    total_runs += kRunsPerIteration;
    total_wall_s += last.wall_s;
  }
  state.counters["crash_after"] = static_cast<double>(crash_after);
  report(state, last, total_runs, total_wall_s);
}
BENCHMARK(BM_MeasurePlaneCrashes)
    ->Arg(0)
    ->Arg(16)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Straggler severity: worker 0 hangs after Arg runs; a tight hedge
// threshold routes its work around it (first result wins). The hedge
// rate and p99 rtt quantify the cost of one slow/hung peer.
void BM_MeasurePlaneStragglers(benchmark::State& state) {
  const std::size_t hang_after = static_cast<std::size_t>(state.range(0));
  PlaneRun last;
  std::size_t total_runs = 0;
  double total_wall_s = 0.0;
  for (auto _ : state) {
    measure::SubprocessOptions options = make_options(4);
    options.hedge_after_s = 0.01;
    options.hang_after_s = 0.25;
    options.restart_backoff.initial_s = 0.001;
    options.restart_backoff.max_s = 0.01;
    ScopedEnv hang("CEAL_WORKER_HANG_AFTER", "0:" + std::to_string(hang_after));
    last = drive(options);
    total_runs += kRunsPerIteration;
    total_wall_s += last.wall_s;
  }
  state.counters["hang_after"] = static_cast<double>(hang_after);
  report(state, last, total_runs, total_wall_s);
}
BENCHMARK(BM_MeasurePlaneStragglers)
    ->Arg(8)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto bench_args =
      ceal::bench::make_bench_args(argc, argv, "BENCH_measure_plane.json");
  benchmark::Initialize(&bench_args.argc, bench_args.argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_args.argc,
                                             bench_args.argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!bench_args.json_path.empty()) {
    ceal::bench::annotate_bench_json(bench_args.json_path);
  }
  return 0;
}
