// Surrogate-model family study (§2.2): with only tens of training
// samples, traditional tree ensembles (boosted trees, random forests)
// out-predict more flexible models — the reason every tuner here uses a
// boosted-tree surrogate. Compares GBT, random forest, and k-NN fitted
// on n random LV pool samples (log targets for all), reporting MdAPE
// over the pool and top-5 recall, as n grows.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "core/csv.h"
#include "core/stats.h"
#include "core/table.h"
#include "ml/gbt.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace {

using namespace ceal;

struct Scores {
  double mdape = 0.0;
  double recall5 = 0.0;
};

Scores fit_and_score(ml::Regressor& model, const ml::Dataset& train,
                     const ml::Dataset& pool,
                     std::span<const double> measured, Rng& rng) {
  model.fit(train, rng);
  std::vector<double> predictions(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    predictions[i] = std::exp(model.predict(pool.row(i)));
  }
  return Scores{mdape_percent(measured, predictions),
                ml::recall_score_percent(5, predictions, measured)};
}

}  // namespace

int main() {
  bench::banner(
      "Surrogate family study: BT vs RF vs k-NN at small sample counts",
      "§2.2 model-choice rationale");
  const auto& env = bench::Env::instance();
  const std::size_t lv = env.index_of("LV");
  const auto& wl = env.workload(lv);
  const auto& pool = env.pool(lv);
  const auto& space = wl.workflow.joint_space();
  const auto& measured = pool.exec_s;

  // Full pool as a feature matrix (log-target convention).
  ml::Dataset pool_data(space.dimension());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool_data.add(space.features(pool.configs[i]), std::log(measured[i]));
  }

  Table table({"samples", "GBT MdAPE", "RF MdAPE", "kNN MdAPE",
               "GBT recall@5", "RF recall@5", "kNN recall@5"});
  CsvWriter csv("ablation_models.csv",
                {"samples", "model", "mdape_pct", "recall5_pct"});
  const std::size_t reps = std::max<std::size_t>(
      5, bench::Env::replications() / 4);

  for (const std::size_t n : {25, 50, 100, 200, 400}) {
    double sums[3][2] = {};
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rng(1000 + rep);
      const auto picks = rng.sample_without_replacement(pool.size(), n);
      const ml::Dataset train = pool_data.subset(picks);

      ml::GradientBoostedTrees gbt(
          ml::GradientBoostedTrees::surrogate_defaults());
      ml::RandomForest rf;
      ml::KnnRegressor knn;
      ml::Regressor* models[3] = {&gbt, &rf, &knn};
      for (int m = 0; m < 3; ++m) {
        const Scores s =
            fit_and_score(*models[m], train, pool_data, measured, rng);
        sums[m][0] += s.mdape;
        sums[m][1] += s.recall5;
      }
    }
    const double inv = 1.0 / static_cast<double>(reps);
    table.add_row({std::to_string(n), bench::fmt(sums[0][0] * inv, 1),
                   bench::fmt(sums[1][0] * inv, 1),
                   bench::fmt(sums[2][0] * inv, 1),
                   bench::fmt(sums[0][1] * inv, 0),
                   bench::fmt(sums[1][1] * inv, 0),
                   bench::fmt(sums[2][1] * inv, 0)});
    const char* names[3] = {"GBT", "RF", "kNN"};
    for (int m = 0; m < 3; ++m) {
      csv.add_row({std::to_string(n), names[m],
                   bench::fmt(sums[m][0] * inv, 2),
                   bench::fmt(sums[m][1] * inv, 2)});
    }
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n" << table;
  std::cout << "\nExpected shape: tree ensembles dominate k-NN at every "
               "budget; GBT leads or ties RF — consistent\nwith §2.2's "
               "rationale for boosted-tree surrogates under tight sample "
               "budgets.\n";
  return 0;
}
