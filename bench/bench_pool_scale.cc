// Pool-scale benchmark: candidate scoring + top-k selection as C_pool
// grows from 2k to 2M configurations (google-benchmark).
//
// Each iteration streams the pool through a fitted surrogate in
// fixed-size blocks (tuner/pool_scorer.h, streaming mode) and selects
// the best 64 with the bounded heap (tuner/tuning_util.h). Memory stays
// flat as the pool grows: no full-pool feature matrix is ever
// materialised, only the 8-byte/row score vector. Reported counters:
//   items_per_second — configurations scored per second
//   peak_rss_mb      — process high-water RSS (bench/common.h)
//   recall_at_64     — % overlap of predicted vs true (noise-free) top-64
//
// CEAL_POOL_SCALE_MAX caps the largest pool size. CI runs with 16384
// (tools/run_tier1.sh); the full 2M sweep is a workstation run. Console
// output mirrors into BENCH_pool_scale.json (docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include "bench/common.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "config/config_space.h"
#include "core/rng.h"
#include "ml/gbt.h"
#include "sim/workloads.h"
#include "tuner/pool_scorer.h"
#include "tuner/surrogate.h"
#include "tuner/tuning_util.h"

namespace {

using namespace ceal;

constexpr std::size_t kTopK = 64;
constexpr std::size_t kChunkRows = 8192;
constexpr std::size_t kTrainConfigs = 128;
constexpr std::size_t kMaxPool = 2'097'152;
// Cached mode materialises the full pool feature matrix, so its sweep
// stops where that matrix stays cheap; past this point only the
// streaming path is benchmarked (and usable).
constexpr std::size_t kMaxCachedPool = 131'072;

const sim::Workload& lv() {
  static const sim::Workload wl = sim::make_lv();
  return wl;
}

/// Surrogate fitted once on a small measured sample, with the full
/// performance configuration enabled: quantized trainer + compiled
/// flat predictor.
const tuner::Surrogate& surrogate() {
  static const tuner::Surrogate model = [] {
    const auto& wf = lv().workflow;
    const auto& space = wf.joint_space();
    Rng sample_rng(bench::kPoolSeed);
    const auto train = space.sample_valid(sample_rng, kTrainConfigs);
    std::vector<double> targets;
    targets.reserve(train.size());
    for (const auto& c : train) targets.push_back(wf.expected(c).exec_s);
    auto params = ml::GradientBoostedTrees::surrogate_defaults();
    params.tree.method = ml::TreeMethod::kQuantized;
    params.compile_predictor = true;
    tuner::Surrogate fitted(params);
    Rng fit_rng(bench::kEvalSeed);
    fitted.fit(space, train, targets, fit_rng);
    return fitted;
  }();
  return model;
}

struct PoolCase {
  std::vector<config::Configuration> configs;
  std::vector<std::size_t> truth_topk;  // sorted ascending by index
};

/// Pool of `n` configurations plus the true (noise-free) top-64. Only
/// one size is held at a time so earlier sweep points do not inflate
/// the peak-RSS counter of later ones.
const PoolCase& pool_case(std::size_t n) {
  static std::size_t current = 0;
  static PoolCase pc;
  if (current != n) {
    pc = PoolCase{};
    const auto& wf = lv().workflow;
    Rng rng(bench::kPoolSeed + n);
    pc.configs = wf.joint_space().sample_valid(rng, n);
    std::vector<double> truth(n);
    for (std::size_t i = 0; i < n; ++i) {
      truth[i] = wf.expected(pc.configs[i]).exec_s;
    }
    pc.truth_topk = tuner::smallest_k(truth, kTopK);
    std::sort(pc.truth_topk.begin(), pc.truth_topk.end());
    current = n;
  }
  return pc;
}

double recall_percent(std::vector<std::size_t> picked,
                      const std::vector<std::size_t>& truth) {
  std::sort(picked.begin(), picked.end());
  std::vector<std::size_t> common;
  std::set_intersection(picked.begin(), picked.end(), truth.begin(),
                        truth.end(), std::back_inserter(common));
  return 100.0 * static_cast<double>(common.size()) /
         static_cast<double>(truth.size());
}

void run_scoring(benchmark::State& state, std::size_t chunk_rows) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& pc = pool_case(n);
  const auto& model = surrogate();
  const auto& space = lv().workflow.joint_space();
  double recall = 0.0;
  for (auto _ : state) {
    const tuner::PoolScorer scorer(space, pc.configs, chunk_rows, nullptr);
    const auto scores = scorer.surrogate_scores(model);
    auto picked = tuner::smallest_k(scores, kTopK);
    benchmark::DoNotOptimize(picked);
    recall = recall_percent(std::move(picked), pc.truth_topk);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  state.counters["recall_at_64"] = recall;
  state.counters["peak_rss_mb"] = bench::peak_rss_mb();
}

void BM_PoolScoreStreaming(benchmark::State& state) {
  run_scoring(state, kChunkRows);
}

void BM_PoolScoreCached(benchmark::State& state) {
  run_scoring(state, /*chunk_rows=*/0);
}

std::size_t pool_scale_cap() {
  if (const char* env = std::getenv("CEAL_POOL_SCALE_MAX")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 2048) return static_cast<std::size_t>(v);
  }
  return kMaxPool;
}

void streaming_args(benchmark::internal::Benchmark* b) {
  const std::size_t cap = pool_scale_cap();
  for (const std::size_t n : {2048ul, 16384ul, 131072ul, 1048576ul,
                              2097152ul}) {
    if (n <= cap) b->Arg(static_cast<std::int64_t>(n));
  }
  b->Unit(benchmark::kMillisecond);
}

void cached_args(benchmark::internal::Benchmark* b) {
  const std::size_t cap = std::min(pool_scale_cap(), kMaxCachedPool);
  for (const std::size_t n : {2048ul, 16384ul, 131072ul}) {
    if (n <= cap) b->Arg(static_cast<std::int64_t>(n));
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_PoolScoreStreaming)->Apply(streaming_args);
BENCHMARK(BM_PoolScoreCached)->Apply(cached_args);

}  // namespace

// Custom main (shared helper): mirror the console output into
// BENCH_pool_scale.json with the common "ceal" metadata header by
// default. Explicit --benchmark_out flags still win.
int main(int argc, char** argv) {
  auto bench_args =
      ceal::bench::make_bench_args(argc, argv, "BENCH_pool_scale.json");
  benchmark::Initialize(&bench_args.argc, bench_args.argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_args.argc,
                                             bench_args.argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!bench_args.json_path.empty()) {
    ceal::bench::annotate_bench_json(bench_args.json_path);
  }
  return 0;
}
