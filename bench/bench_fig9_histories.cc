// Fig. 9: effect of historical component measurements on CEAL.
//   (a) execution time of the predicted best configuration: LV and HS at
//       50 and 100 training samples
//   (b) computer time: LV, HS, GP at 25 and 50 training samples
// "With histories" trains component models on the 500-sample archives for
// free; "without" charges m_R runs against the budget.
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"

int main() {
  using namespace ceal;
  using tuner::Objective;
  bench::banner("Effect of historical measurements on CEAL", "Fig. 9");
  const auto& env = bench::Env::instance();

  Table table({"workflow", "objective", "samples", "CEAL w/o histories",
               "CEAL w/ histories"});
  CsvWriter csv("fig9_histories.csv",
                {"workflow", "objective", "samples", "history",
                 "norm_perf"});

  struct Cell {
    const char* wf;
    Objective obj;
    std::size_t budget;
  };
  std::vector<Cell> cells;
  for (const char* wf : {"LV", "HS"}) {
    for (const std::size_t m : {50, 100}) {
      cells.push_back({wf, Objective::kExecTime, m});
    }
  }
  for (const char* wf : {"LV", "HS", "GP"}) {
    for (const std::size_t m : {25, 50}) {
      cells.push_back({wf, Objective::kComputerTime, m});
    }
  }

  for (const auto& cell : cells) {
    const std::size_t w = env.index_of(cell.wf);
    const auto without = bench::run_cell(env, "CEAL", w, cell.obj,
                                         cell.budget, /*history=*/false);
    const auto with = bench::run_cell(env, "CEAL", w, cell.obj,
                                      cell.budget, /*history=*/true);
    table.add_row({cell.wf, tuner::objective_name(cell.obj),
                   std::to_string(cell.budget),
                   bench::fmt(without.mean_norm_perf),
                   bench::fmt(with.mean_norm_perf)});
    csv.add_row({cell.wf, tuner::objective_name(cell.obj),
                 std::to_string(cell.budget), "no",
                 bench::fmt(without.mean_norm_perf)});
    csv.add_row({cell.wf, tuner::objective_name(cell.obj),
                 std::to_string(cell.budget), "yes",
                 bench::fmt(with.mean_norm_perf)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n" << table;
  std::cout << "\nPaper shape: histories help in most cells (paper: at 25 "
               "samples they cut computer time by 7.8%\n(LV), 38.9% (HS), "
               "6.6% (GP)). Series in fig9_histories.csv.\n";
  return 0;
}
