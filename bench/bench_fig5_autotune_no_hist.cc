// Fig. 5: normalised execution/computer time of the best configuration
// found by RS, GEIST, AL, and CEAL without historical measurements.
//   (a) LV: exec @ {50,100}, comp @ {25,50}
//   (b) HS: exec @ {50,100}, comp @ {25,50}
//   (c) GP: comp @ {25,50}
// Values are normalised by the best configuration in the test pool
// (dashed line "1" in the paper plots).
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"

int main() {
  using namespace ceal;
  using tuner::Objective;
  bench::banner(
      "Best configuration auto-tuned without historical measurements",
      "Fig. 5");
  const auto& env = bench::Env::instance();

  struct Panel {
    const char* wf;
    Objective obj;
    std::size_t budgets[2];
  };
  const Panel panels[] = {
      {"LV", Objective::kExecTime, {50, 100}},
      {"LV", Objective::kComputerTime, {25, 50}},
      {"HS", Objective::kExecTime, {50, 100}},
      {"HS", Objective::kComputerTime, {25, 50}},
      {"GP", Objective::kComputerTime, {25, 50}},
  };
  const char* algos[] = {"RS", "GEIST", "AL", "CEAL"};

  Table table({"workflow", "objective", "samples", "RS", "GEIST", "AL",
               "CEAL"});
  CsvWriter csv("fig5_autotune_no_hist.csv",
                {"workflow", "objective", "samples", "algorithm",
                 "norm_perf"});
  for (const auto& panel : panels) {
    const std::size_t w = env.index_of(panel.wf);
    for (const std::size_t budget : panel.budgets) {
      std::vector<std::string> row{
          panel.wf, tuner::objective_name(panel.obj),
          std::to_string(budget)};
      for (const char* algo : algos) {
        const auto s = bench::run_cell(env, algo, w, panel.obj, budget,
                                       /*history=*/false);
        row.push_back(bench::fmt(s.mean_norm_perf));
        csv.add_row({panel.wf, tuner::objective_name(panel.obj),
                     std::to_string(budget), algo,
                     bench::fmt(s.mean_norm_perf)});
      }
      table.add_row(row);
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n\n" << table;
  std::cout << "\nPaper shape: CEAL lowest (or tied) in every cell; RS "
               "worst; AL between. Paper examples:\nCEAL improves 15-72% "
               "over RS and 10-60% over GEIST. Series in "
               "fig5_autotune_no_hist.csv.\n";
  return 0;
}
