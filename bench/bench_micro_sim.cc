// Micro-benchmarks of the simulator and tuning substrate
// (google-benchmark): coupled-run evaluation, pool construction, and
// low-fidelity scoring throughput.
#include <benchmark/benchmark.h>

#include "bench/common.h"

#include <memory>

#include "core/rng.h"
#include "sim/workloads.h"
#include "tuner/low_fidelity.h"
#include "tuner/measured_pool.h"

namespace {

using namespace ceal;

void BM_WorkflowExpected(benchmark::State& state) {
  const auto wl = sim::make_lv();
  Rng rng(1);
  const auto c = wl.workflow.joint_space().random_valid(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl.workflow.expected(c));
  }
}
BENCHMARK(BM_WorkflowExpected);

void BM_WorkflowNoisyRun(benchmark::State& state) {
  const auto wl = sim::make_gp();  // four components, three edges
  Rng rng(2);
  const auto c = wl.workflow.joint_space().random_valid(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl.workflow.run(c, rng));
  }
}
BENCHMARK(BM_WorkflowNoisyRun);

void BM_RandomValidConfig(benchmark::State& state) {
  const auto wl = sim::make_hs();  // tightest joint constraint
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl.workflow.joint_space().random_valid(rng));
  }
}
BENCHMARK(BM_RandomValidConfig);

void BM_MeasurePool(benchmark::State& state) {
  const auto wl = sim::make_lv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner::measure_pool(
        wl.workflow, static_cast<std::size_t>(state.range(0)), 7));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MeasurePool)->Arg(200)->Arg(2000);

void BM_LowFidelityScorePool(benchmark::State& state) {
  const auto wl = sim::make_lv();
  const auto pool = tuner::measure_pool(wl.workflow, 2000, 7);
  const auto comps = tuner::measure_components(wl.workflow, 500, 8);
  std::vector<std::vector<std::size_t>> all(comps.size());
  for (std::size_t j = 0; j < comps.size(); ++j) {
    all[j].resize(comps[j].size());
    for (std::size_t i = 0; i < comps[j].size(); ++i) all[j][i] = i;
  }
  Rng rng(9);
  auto cm = std::make_shared<const tuner::ComponentModelSet>(
      wl.workflow, tuner::Objective::kExecTime, comps, all, rng);
  const tuner::LowFidelityModel lf(wl.workflow, tuner::Objective::kExecTime,
                                   cm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lf.score_many(pool.configs));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_LowFidelityScorePool);

}  // namespace

// Custom main (shared helper): mirror the console output into
// BENCH_micro_sim.json with the common "ceal" metadata header by default.
// Explicit --benchmark_out flags still win.
int main(int argc, char** argv) {
  auto bench_args =
      ceal::bench::make_bench_args(argc, argv, "BENCH_micro_sim.json");
  benchmark::Initialize(&bench_args.argc, bench_args.argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_args.argc,
                                             bench_args.argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!bench_args.json_path.empty()) {
    ceal::bench::annotate_bench_json(bench_args.json_path);
  }
  return 0;
}
