// Micro-benchmarks of the simulator and tuning substrate
// (google-benchmark): coupled-run evaluation, pool construction, and
// low-fidelity scoring throughput.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/rng.h"
#include "sim/workloads.h"
#include "tuner/low_fidelity.h"
#include "tuner/measured_pool.h"

namespace {

using namespace ceal;

void BM_WorkflowExpected(benchmark::State& state) {
  const auto wl = sim::make_lv();
  Rng rng(1);
  const auto c = wl.workflow.joint_space().random_valid(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl.workflow.expected(c));
  }
}
BENCHMARK(BM_WorkflowExpected);

void BM_WorkflowNoisyRun(benchmark::State& state) {
  const auto wl = sim::make_gp();  // four components, three edges
  Rng rng(2);
  const auto c = wl.workflow.joint_space().random_valid(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl.workflow.run(c, rng));
  }
}
BENCHMARK(BM_WorkflowNoisyRun);

void BM_RandomValidConfig(benchmark::State& state) {
  const auto wl = sim::make_hs();  // tightest joint constraint
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl.workflow.joint_space().random_valid(rng));
  }
}
BENCHMARK(BM_RandomValidConfig);

void BM_MeasurePool(benchmark::State& state) {
  const auto wl = sim::make_lv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner::measure_pool(
        wl.workflow, static_cast<std::size_t>(state.range(0)), 7));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MeasurePool)->Arg(200)->Arg(2000);

void BM_LowFidelityScorePool(benchmark::State& state) {
  const auto wl = sim::make_lv();
  const auto pool = tuner::measure_pool(wl.workflow, 2000, 7);
  const auto comps = tuner::measure_components(wl.workflow, 500, 8);
  std::vector<std::vector<std::size_t>> all(comps.size());
  for (std::size_t j = 0; j < comps.size(); ++j) {
    all[j].resize(comps[j].size());
    for (std::size_t i = 0; i < comps[j].size(); ++i) all[j][i] = i;
  }
  Rng rng(9);
  auto cm = std::make_shared<const tuner::ComponentModelSet>(
      wl.workflow, tuner::Objective::kExecTime, comps, all, rng);
  const tuner::LowFidelityModel lf(wl.workflow, tuner::Objective::kExecTime,
                                   cm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lf.score_many(pool.configs));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_LowFidelityScorePool);

}  // namespace

BENCHMARK_MAIN();
