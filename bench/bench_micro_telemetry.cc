// Micro-benchmarks of the telemetry layer (google-benchmark): the cost
// of a fully traced tuning session against the disabled path, plus the
// per-site primitives. The overhead contract (docs/OBSERVABILITY.md) is
// that with no telemetry attached every instrumentation site reduces to
// one branch on a null pointer — the Disabled/NullSink pair below is the
// evidence (delta < 1%).
//
// Besides the console table, the run writes machine-readable results to
// BENCH_micro_telemetry.json in the working directory.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/rng.h"
#include "core/telemetry.h"
#include "sim/workloads.h"
#include "tuner/ceal.h"
#include "tuner/measured_pool.h"

namespace {

using namespace ceal;

/// Shared workload + pools, built once (pool measurement dominates a
/// single tuning session).
struct Fixture {
  static const Fixture& instance() {
    static Fixture f;
    return f;
  }

  Fixture()
      : wl(sim::make_lv()),
        pool(tuner::measure_pool(wl.workflow, 400, 21)),
        comps(tuner::measure_components(wl.workflow, 120, 22)) {}

  sim::Workload wl;
  tuner::MeasuredPool pool;
  std::vector<tuner::ComponentSamples> comps;
};

void run_ceal_session(telemetry::Telemetry* tel, benchmark::State& state) {
  const Fixture& f = Fixture::instance();
  tuner::TuningProblem problem{&f.wl, tuner::Objective::kExecTime, &f.pool,
                               &f.comps, true, {}};
  problem.telemetry = tel;
  const tuner::Ceal algo(tuner::CealParams::with_history());
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(algo.tune(problem, 25, rng));
  }
}

// The pair whose delta is the disabled-instrumentation overhead: a null
// Telemetry pointer (every site is one branch) vs pre-PR code with no
// instrumentation at all. NullSink additionally pays event construction.
void BM_CealSessionTelemetryDisabled(benchmark::State& state) {
  run_ceal_session(nullptr, state);
}
BENCHMARK(BM_CealSessionTelemetryDisabled)->Unit(benchmark::kMillisecond);

void BM_CealSessionTelemetryNullSink(benchmark::State& state) {
  telemetry::NullTraceSink sink;
  telemetry::Telemetry tel(&sink);
  run_ceal_session(&tel, state);
}
BENCHMARK(BM_CealSessionTelemetryNullSink)->Unit(benchmark::kMillisecond);

// Metrics-only: counters and spans accumulate but emit() drops events at
// the no-sink branch — the mode `ceal_tune --metrics-summary` runs in.
void BM_CealSessionTelemetryNoSink(benchmark::State& state) {
  telemetry::Telemetry tel;
  run_ceal_session(&tel, state);
}
BENCHMARK(BM_CealSessionTelemetryNoSink)->Unit(benchmark::kMillisecond);

// --- Per-site primitives. ---

void BM_ScopedSpanNull(benchmark::State& state) {
  for (auto _ : state) {
    telemetry::ScopedSpan span(nullptr, "surrogate.fit");
    benchmark::DoNotOptimize(span.stop());
  }
}
BENCHMARK(BM_ScopedSpanNull);

void BM_ScopedSpanActive(benchmark::State& state) {
  telemetry::Telemetry tel;
  for (auto _ : state) {
    telemetry::ScopedSpan span(&tel, "surrogate.fit");
    benchmark::DoNotOptimize(span.stop());
  }
}
BENCHMARK(BM_ScopedSpanActive);

void BM_CounterIncrement(benchmark::State& state) {
  telemetry::Telemetry tel;
  for (auto _ : state) {
    tel.count("measure.requests");
  }
  benchmark::DoNotOptimize(tel.counter("measure.requests"));
}
BENCHMARK(BM_CounterIncrement);

void BM_EmitToNullSink(benchmark::State& state) {
  telemetry::NullTraceSink sink;
  telemetry::Telemetry tel(&sink);
  const std::vector<std::size_t> batch{1, 2, 3, 4, 5, 6, 7};
  for (auto _ : state) {
    telemetry::TraceEvent event("measure");
    event.field("pool_index", std::uint64_t{42})
        .field("status", "ok")
        .field("value", 319.82)
        .field("batch", std::span<const std::size_t>(batch));
    tel.emit(std::move(event));
  }
}
BENCHMARK(BM_EmitToNullSink);

}  // namespace

// Custom main: mirror the console output into BENCH_micro_telemetry.json
// by default so scripts can diff runs without scraping the human-readable
// table.  Explicit --benchmark_out flags still win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out")) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_telemetry.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
