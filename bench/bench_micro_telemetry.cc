// Micro-benchmarks of the telemetry layer (google-benchmark): the cost
// of a fully traced tuning session against the disabled path, plus the
// per-site primitives. The overhead contract (docs/OBSERVABILITY.md) is
// that with no telemetry attached every instrumentation site reduces to
// one branch on a null pointer — the Disabled/NullSink pair below is the
// evidence (delta < 1%).
//
// Besides the console table, the run writes machine-readable results to
// BENCH_micro_telemetry.json in the working directory.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench/common.h"
#include "core/json.h"
#include "core/rng.h"
#include "core/telemetry.h"
#include "sim/workloads.h"
#include "tuner/ceal.h"
#include "tuner/measured_pool.h"

namespace {

using namespace ceal;

/// Shared workload + pools, built once (pool measurement dominates a
/// single tuning session).
struct Fixture {
  static const Fixture& instance() {
    static Fixture f;
    return f;
  }

  Fixture()
      : wl(sim::make_lv()),
        pool(tuner::measure_pool(wl.workflow, 400, 21)),
        comps(tuner::measure_components(wl.workflow, 120, 22)) {}

  sim::Workload wl;
  tuner::MeasuredPool pool;
  std::vector<tuner::ComponentSamples> comps;
};

void run_ceal_session(telemetry::Telemetry* tel, benchmark::State& state) {
  const Fixture& f = Fixture::instance();
  tuner::TuningProblem problem{&f.wl, tuner::Objective::kExecTime, &f.pool,
                               &f.comps, true, {}};
  problem.telemetry = tel;
  const tuner::Ceal algo(tuner::CealParams::with_history());
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(algo.tune(problem, 25, rng));
  }
}

// The pair whose delta is the disabled-instrumentation overhead: a null
// Telemetry pointer (every site is one branch) vs pre-PR code with no
// instrumentation at all. NullSink additionally pays event construction.
void BM_CealSessionTelemetryDisabled(benchmark::State& state) {
  run_ceal_session(nullptr, state);
}
BENCHMARK(BM_CealSessionTelemetryDisabled)->Unit(benchmark::kMillisecond);

void BM_CealSessionTelemetryNullSink(benchmark::State& state) {
  telemetry::NullTraceSink sink;
  telemetry::Telemetry tel(&sink);
  run_ceal_session(&tel, state);
}
BENCHMARK(BM_CealSessionTelemetryNullSink)->Unit(benchmark::kMillisecond);

// Metrics-only: counters and spans accumulate but emit() drops events at
// the no-sink branch — the mode `ceal_tune --metrics-summary` runs in.
void BM_CealSessionTelemetryNoSink(benchmark::State& state) {
  telemetry::Telemetry tel;
  run_ceal_session(&tel, state);
}
BENCHMARK(BM_CealSessionTelemetryNoSink)->Unit(benchmark::kMillisecond);

// --- Per-site primitives. ---

void BM_ScopedSpanNull(benchmark::State& state) {
  for (auto _ : state) {
    telemetry::ScopedSpan span(nullptr, "surrogate.fit");
    benchmark::DoNotOptimize(span.stop());
  }
}
BENCHMARK(BM_ScopedSpanNull);

void BM_ScopedSpanActive(benchmark::State& state) {
  telemetry::Telemetry tel;
  for (auto _ : state) {
    telemetry::ScopedSpan span(&tel, "surrogate.fit");
    benchmark::DoNotOptimize(span.stop());
  }
}
BENCHMARK(BM_ScopedSpanActive);

void BM_CounterIncrement(benchmark::State& state) {
  telemetry::Telemetry tel;
  for (auto _ : state) {
    tel.count("measure.requests");
  }
  benchmark::DoNotOptimize(tel.counter("measure.requests"));
}
BENCHMARK(BM_CounterIncrement);

void BM_EmitToNullSink(benchmark::State& state) {
  telemetry::NullTraceSink sink;
  telemetry::Telemetry tel(&sink);
  const std::vector<std::size_t> batch{1, 2, 3, 4, 5, 6, 7};
  for (auto _ : state) {
    telemetry::TraceEvent event("measure");
    event.field("pool_index", std::uint64_t{42})
        .field("status", "ok")
        .field("value", 319.82)
        .field("batch", std::span<const std::size_t>(batch));
    tel.emit(std::move(event));
  }
}
BENCHMARK(BM_EmitToNullSink);

// --- Overhead-contract gate over the written JSON. ---

/// cpu_time of `name` from a google-benchmark JSON document, preferring
/// the `median` aggregate when repetitions were run; -1 when absent.
double bench_cpu_time(const json::Value& root, const std::string& name) {
  const json::Value& benchmarks = root.at("benchmarks");
  double plain = -1.0;
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const json::Value& b = benchmarks.at(i);
    const json::Value* cpu = b.find("cpu_time");
    if (cpu == nullptr) continue;
    if (const json::Value* agg = b.find("aggregate_name")) {
      const json::Value* run_name = b.find("run_name");
      if (agg->as_string() == "median" && run_name != nullptr &&
          run_name->as_string() == name) {
        return cpu->as_double();  // median wins outright
      }
      continue;
    }
    if (const json::Value* n = b.find("name");
        n != nullptr && n->as_string() == name && plain < 0.0) {
      plain = cpu->as_double();
    }
  }
  return plain;
}

/// Disabled-vs-null-sink session delta must stay within
/// CEAL_TELEMETRY_OVERHEAD_TOL (relative, default 0.01). Returns the
/// process exit code.
int check_overhead_contract(const std::string& json_path) {
  std::ifstream in(json_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const json::Value root = json::Value::parse(buffer.str());

  const double disabled =
      bench_cpu_time(root, "BM_CealSessionTelemetryDisabled");
  const double null_sink =
      bench_cpu_time(root, "BM_CealSessionTelemetryNullSink");
  if (disabled <= 0.0 || null_sink <= 0.0) {
    std::cout << "overhead gate skipped (session benchmarks not in this "
                 "run)\n";
    return 0;
  }

  double tolerance = 0.01;
  if (const char* env = std::getenv("CEAL_TELEMETRY_OVERHEAD_TOL")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.0) tolerance = v;
  }
  const double rel = (null_sink - disabled) / disabled;
  std::cout << "telemetry session overhead: disabled=" << disabled
            << "ms null_sink=" << null_sink << "ms delta=" << rel * 100.0
            << "% (tolerance " << tolerance * 100.0 << "%)\n";
  if (rel > tolerance) {
    std::cerr << "FAILED: disabled-path overhead contract broken ("
              << rel * 100.0 << "% > " << tolerance * 100.0 << "%)\n";
    return 1;
  }
  return 0;
}

}  // namespace

// Custom main (shared helper): write BENCH_micro_telemetry.json with the
// common "ceal" metadata header, then enforce the disabled-path overhead
// contract — the fully disabled session (null Telemetry pointer, one
// branch per site) and the null-sink session must agree within
// CEAL_TELEMETRY_OVERHEAD_TOL (relative, default 0.01 per
// docs/OBSERVABILITY.md; CI loosens it because single-core container
// wall clocks are noisy). A broken contract exits nonzero instead of
// just printing numbers.
int main(int argc, char** argv) {
  auto bench_args =
      ceal::bench::make_bench_args(argc, argv, "BENCH_micro_telemetry.json");
  benchmark::Initialize(&bench_args.argc, bench_args.argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_args.argc,
                                             bench_args.argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (bench_args.json_path.empty()) return 0;
  ceal::bench::annotate_bench_json(bench_args.json_path);
  return check_overhead_contract(bench_args.json_path);
}
