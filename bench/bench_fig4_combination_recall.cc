// Fig. 4: recall scores of the low-fidelity combination functions
// (max-of-execution-time, sum-of-computer-time) when scoring 500 random
// LV configurations, against random selection.
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"
#include "ml/metrics.h"
#include "tuner/low_fidelity.h"

int main() {
  using namespace ceal;
  using namespace ceal::tuner;
  bench::banner("Recall of ACM combination functions on LV", "Fig. 4");
  const auto& env = bench::Env::instance();
  const std::size_t lv = env.index_of("LV");
  const auto& wl = env.workload(lv);
  const auto& pool = env.pool(lv);
  const auto& comps = env.components(lv);

  // Component models from the full 500-sample histories (§7.1).
  std::vector<std::vector<std::size_t>> all(comps.size());
  for (std::size_t j = 0; j < comps.size(); ++j) {
    all[j].resize(comps[j].size());
    for (std::size_t i = 0; i < comps[j].size(); ++i) all[j][i] = i;
  }

  // Score the first 500 pool configurations, as in the paper.
  const std::size_t n = 500;
  std::vector<config::Configuration> sub(pool.configs.begin(),
                                         pool.configs.begin() + n);

  Rng rng(99);
  Table table({"top-n", "max of exec time (%)", "random (exec) (%)",
               "sum of comp time (%)", "random (comp) (%)"});
  CsvWriter csv("fig4_combination_recall.csv",
                {"top_n", "max_exec", "random_exec", "sum_comp",
                 "random_comp"});

  std::vector<std::vector<double>> columns(4);
  for (const auto obj :
       {Objective::kExecTime, Objective::kComputerTime}) {
    auto cm = std::make_shared<const ComponentModelSet>(wl.workflow, obj,
                                                        comps, all, rng);
    const LowFidelityModel lf(wl.workflow, obj, cm);
    const auto scores = lf.score_many(sub);
    std::vector<double> meas(pool.measured(obj).begin(),
                             pool.measured(obj).begin() + n);

    // Random-ordering baseline, averaged over replications.
    const std::size_t reps = bench::Env::replications();
    std::vector<double> rand_recall(25, 0.0);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto perm = rng.permutation(n);
      std::vector<double> random_scores(n);
      for (std::size_t i = 0; i < n; ++i) {
        random_scores[i] = static_cast<double>(perm[i]);
      }
      for (std::size_t k = 1; k <= 25; ++k) {
        rand_recall[k - 1] +=
            ml::recall_score_percent(k, random_scores, meas);
      }
    }
    const std::size_t base = obj == Objective::kExecTime ? 0 : 2;
    for (std::size_t k = 1; k <= 25; ++k) {
      columns[base].push_back(ml::recall_score_percent(k, scores, meas));
      columns[base + 1].push_back(rand_recall[k - 1] /
                                  static_cast<double>(reps));
    }
  }

  for (std::size_t k = 1; k <= 25; k += 2) {
    table.add_row({std::to_string(k), bench::fmt(columns[0][k - 1], 0),
                   bench::fmt(columns[1][k - 1], 1),
                   bench::fmt(columns[2][k - 1], 0),
                   bench::fmt(columns[3][k - 1], 1)});
  }
  for (std::size_t k = 1; k <= 25; ++k) {
    csv.add_row({std::to_string(k), bench::fmt(columns[0][k - 1], 2),
                 bench::fmt(columns[1][k - 1], 2),
                 bench::fmt(columns[2][k - 1], 2),
                 bench::fmt(columns[3][k - 1], 2)});
  }
  std::cout << table;
  std::cout << "\nPaper shape: combination functions reach >30% recall for "
               "top 2-25, far above random\n(which is ~n/500). Series "
               "written to fig4_combination_recall.csv.\n";
  return 0;
}
