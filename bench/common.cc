#include "bench/common.h"

#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include "core/error.h"
#include "core/json.h"
#include "core/parallel.h"
#include "core/table.h"
#include "tuner/active_learning.h"
#include "tuner/alph.h"
#include "tuner/ceal.h"
#include "tuner/random_search.h"

namespace ceal::bench {

Env::Env() {
  workloads_ = sim::make_all_workloads();
  pools_.reserve(workloads_.size());
  components_.reserve(workloads_.size());
  graphs_.reserve(workloads_.size());
  for (const auto& wl : workloads_) {
    pools_.push_back(
        tuner::measure_pool(wl.workflow, kPoolSize, kPoolSeed));
    components_.push_back(tuner::measure_components(
        wl.workflow, kComponentSamples, kComponentSeed));
    graphs_.push_back(std::make_shared<const tuner::PoolGraph>(
        wl.workflow.joint_space(), pools_.back().configs,
        /*k_neighbors=*/10));
  }
}

const Env& Env::instance() {
  static Env env;
  return env;
}

const sim::Workload& Env::workload(std::size_t i) const {
  CEAL_EXPECT(i < workloads_.size());
  return workloads_[i];
}

const tuner::MeasuredPool& Env::pool(std::size_t i) const {
  CEAL_EXPECT(i < pools_.size());
  return pools_[i];
}

const std::vector<tuner::ComponentSamples>& Env::components(
    std::size_t i) const {
  CEAL_EXPECT(i < components_.size());
  return components_[i];
}

std::shared_ptr<const tuner::PoolGraph> Env::graph(std::size_t i) const {
  CEAL_EXPECT(i < graphs_.size());
  return graphs_[i];
}

std::size_t Env::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < workloads_.size(); ++i) {
    if (workloads_[i].workflow.name() == name) return i;
  }
  throw PreconditionError("unknown workload " + name);
}

tuner::TuningProblem Env::problem(std::size_t i, tuner::Objective objective,
                                  bool history) const {
  return tuner::TuningProblem{&workload(i), objective, &pool(i),
                              &components(i), history, {}};
}

std::size_t Env::replications() {
  if (const char* env = std::getenv("CEAL_REPS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return 40;
}

std::unique_ptr<tuner::AutoTuner> make_algorithm(const std::string& name,
                                                 const Env& env,
                                                 std::size_t w) {
  if (name == "RS") return std::make_unique<tuner::RandomSearch>();
  if (name == "AL") return std::make_unique<tuner::ActiveLearning>();
  if (name == "GEIST") {
    tuner::GeistParams params;
    params.graph = env.graph(w);
    return std::make_unique<tuner::Geist>(params);
  }
  if (name == "ALpH") return std::make_unique<tuner::Alph>();
  if (name == "CEAL") return std::make_unique<tuner::Ceal>();
  throw PreconditionError("unknown algorithm " + name);
}

tuner::EvalSummary run_cell(const Env& env, const std::string& name,
                            std::size_t w, tuner::Objective objective,
                            std::size_t budget, bool history) {
  const auto algo = make_algorithm(name, env, w);
  const auto prob = env.problem(w, objective, history);
  return tuner::evaluate(prob, *algo, budget, Env::replications(),
                         kEvalSeed);
}

std::string fmt(double v, int precision) {
  if (std::isinf(v)) return "inf";
  return Table::num(v, precision);
}

BenchArgs make_bench_args(int argc, char** argv,
                          const std::string& default_json) {
  BenchArgs out;
  out.argv.assign(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out")) {
      has_out = true;
    }
  }
  if (!has_out) {
    // Function-local statics so the argv pointers stay valid however the
    // returned struct is copied or moved (one call per process).
    static std::string out_flag, fmt_flag;
    out_flag = "--benchmark_out=" + default_json;
    fmt_flag = "--benchmark_out_format=json";
    out.argv.push_back(out_flag.data());
    out.argv.push_back(fmt_flag.data());
    out.json_path = default_json;
  }
  out.argc = static_cast<int>(out.argv.size());
  return out;
}

namespace {

/// `git describe --always --dirty`, or "unknown" outside a repo.
std::string git_describe() {
  FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::string out;
  char buf[128];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

void annotate_bench_json(const std::string& path) {
  std::ifstream in(path);
  CEAL_EXPECT_MSG(in.good(), "cannot open bench output '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  json::Value root = json::Value::parse(buffer.str());
  CEAL_EXPECT_MSG(root.is_object() && root.contains("benchmarks"),
                  "'" + path + "' is not a google-benchmark JSON file");

  json::Value meta = json::Value::object();
  meta.set("git_describe", json::Value::string(git_describe()));
#ifdef CEAL_BUILD_TYPE
  meta.set("build_type", json::Value::string(CEAL_BUILD_TYPE));
#else
  meta.set("build_type", json::Value::string("unknown"));
#endif
  meta.set("threads", json::Value::number(
                          static_cast<std::uint64_t>(global_thread_count())));
  meta.set("peak_rss_mb", json::Value::number(peak_rss_mb()));
  meta.set("timestamp", json::Value::string(utc_timestamp()));
  root.set("ceal", std::move(meta));

  std::ofstream out(path, std::ios::trunc);
  CEAL_EXPECT_MSG(out.good(), "cannot rewrite bench output '" + path + "'");
  root.write(out);
  out << '\n';
}

double peak_rss_mb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#ifdef __APPLE__
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
}

void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << "; " << Env::replications()
            << " replications per point, CEAL_REPS overrides)\n"
            << "==============================================\n";
}

}  // namespace ceal::bench
