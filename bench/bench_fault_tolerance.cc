// Degradation curves under injected measurement faults: RS, AL, and CEAL
// tune LV (exec, 50 samples) while each run attempt fails with
// probability p in {0, 0.05, 0.1, 0.2, 0.3, 0.4}. Failed attempts still
// charge budget (up to 3 attempts per configuration), so the usable
// sample count shrinks as p grows; the interesting question is how
// gracefully each tuner's recommendation quality decays.
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"
#include "tuner/evaluation.h"

int main() {
  using namespace ceal;
  using tuner::Objective;
  bench::banner(
      "Recommendation quality vs injected measurement failure rate",
      "fault-tolerance extension");
  const auto& env = bench::Env::instance();

  const double fault_rates[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4};
  const char* algos[] = {"RS", "AL", "CEAL"};
  const std::size_t w = env.index_of("LV");
  const std::size_t budget = 50;

  Table table({"fault rate", "RS", "AL", "CEAL"});
  CsvWriter csv("fault_tolerance.csv",
                {"fault_rate", "algorithm", "norm_perf", "top3_recall",
                 "mean_runs_used"});
  for (const double rate : fault_rates) {
    tuner::TuningProblem problem =
        env.problem(w, Objective::kExecTime, /*history=*/false);
    problem.measurement.faults.fail_prob = rate;
    problem.measurement.max_attempts = 3;

    std::vector<std::string> row{bench::fmt(rate, 2)};
    for (const char* name : algos) {
      const auto algo = bench::make_algorithm(name, env, w);
      const auto s = tuner::evaluate(problem, *algo, budget,
                                     bench::Env::replications(),
                                     bench::kEvalSeed);
      row.push_back(bench::fmt(s.mean_norm_perf));
      csv.add_row({bench::fmt(rate, 2), name, bench::fmt(s.mean_norm_perf),
                   bench::fmt(s.mean_recall[2], 1),
                   bench::fmt(s.mean_runs_used, 1)});
      std::cout << "." << std::flush;
    }
    table.add_row(row);
  }
  std::cout << "\n\n" << table;
  std::cout << "\nExpected shape: every algorithm degrades as the failure "
               "rate grows (fewer usable samples\nfor the same budget); "
               "CEAL stays closest to its fault-free quality because the "
               "low-fidelity\nmodel needs no workflow runs. Series in "
               "fault_tolerance.csv.\n";
  return 0;
}
