// Shared environment for the paper-reproduction bench binaries: the three
// workflows, their 2000-configuration measured pools (§7.1), the
// 500-sample component measurement sets, and a pre-built GEIST pool graph
// per workflow.
//
// Replication count defaults to 40 and can be raised to the paper's 100
// via the CEAL_REPS environment variable (all binaries honour it).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/workloads.h"
#include "tuner/evaluation.h"
#include "tuner/geist.h"
#include "tuner/measured_pool.h"

namespace ceal::bench {

inline constexpr std::size_t kPoolSize = 2000;
inline constexpr std::size_t kComponentSamples = 500;
inline constexpr std::uint64_t kPoolSeed = 20211114;  // SC'21 opening day
inline constexpr std::uint64_t kComponentSeed = 20211119;
inline constexpr std::uint64_t kEvalSeed = 42;

class Env {
 public:
  /// Builds (once) and returns the shared environment.
  static const Env& instance();

  std::size_t workload_count() const { return workloads_.size(); }
  const sim::Workload& workload(std::size_t i) const;
  const tuner::MeasuredPool& pool(std::size_t i) const;
  const std::vector<tuner::ComponentSamples>& components(std::size_t i) const;
  std::shared_ptr<const tuner::PoolGraph> graph(std::size_t i) const;

  /// Index by paper name: "LV", "HS", "GP".
  std::size_t index_of(const std::string& name) const;

  tuner::TuningProblem problem(std::size_t i, tuner::Objective objective,
                               bool history) const;

  /// Replications per experiment (CEAL_REPS env var, default 40).
  static std::size_t replications();

 private:
  Env();

  std::vector<sim::Workload> workloads_;
  std::vector<tuner::MeasuredPool> pools_;
  std::vector<std::vector<tuner::ComponentSamples>> components_;
  std::vector<std::shared_ptr<const tuner::PoolGraph>> graphs_;
};

/// "1.234" style normalised value or "inf".
std::string fmt(double v, int precision = 3);

/// Builds an algorithm by paper name ("RS", "AL", "GEIST", "ALpH",
/// "CEAL"); GEIST receives the pre-built pool graph for workload `w`.
std::unique_ptr<tuner::AutoTuner> make_algorithm(const std::string& name,
                                                 const Env& env,
                                                 std::size_t w);

/// Runs one experiment cell: `name` on workload `w` under `objective`
/// with `budget` training samples, averaged over replications().
tuner::EvalSummary run_cell(const Env& env, const std::string& name,
                            std::size_t w, tuner::Objective objective,
                            std::size_t budget, bool history);

/// Writes `header` and the bench name banner to stdout.
void banner(const std::string& title, const std::string& paper_ref);

// --- Standardised BENCH_*.json output for the bench_micro_* targets. ---

/// argv for a google-benchmark main with `--benchmark_out=<default_json>
/// --benchmark_out_format=json` injected unless the caller passed their
/// own --benchmark_out flags. `json_path` is the file the run will write
/// ("" when the caller overrode the output).
struct BenchArgs {
  std::vector<char*> argv;
  int argc = 0;
  std::string json_path;
};
BenchArgs make_bench_args(int argc, char** argv,
                          const std::string& default_json);

/// Rewrites a google-benchmark JSON output file in place, inserting a
/// top-level "ceal" metadata object: git describe, build type, global
/// thread-pool width, peak RSS, and a UTC timestamp — the common header
/// ceal_report expects on every BENCH_*.json (docs/PERFORMANCE.md).
/// Throws PreconditionError when the file is missing or malformed.
void annotate_bench_json(const std::string& path);

/// Peak resident set size of this process in MiB (getrusage ru_maxrss),
/// or 0 when the platform does not report it. A high-water mark: it
/// never decreases, so sample it after the workload of interest.
double peak_rss_mb();

}  // namespace ceal::bench
