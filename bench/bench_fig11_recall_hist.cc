// Fig. 11: robustness (recall at top 1..9) of CEAL vs ALpH with
// historical component measurements:
//   (a) execution time of LV and HS @ 50 samples
//   (b) computer time of LV @ 25 and GP @ 25 samples
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"

int main() {
  using namespace ceal;
  using tuner::Objective;
  bench::banner("Robustness with histories: CEAL vs ALpH (recall)",
                "Fig. 11");
  const auto& env = bench::Env::instance();

  struct Cell {
    const char* wf;
    Objective obj;
    std::size_t budget;
  };
  const Cell cells[] = {
      {"LV", Objective::kExecTime, 50},
      {"HS", Objective::kExecTime, 50},
      {"LV", Objective::kComputerTime, 25},
      {"GP", Objective::kComputerTime, 25},
  };

  CsvWriter csv("fig11_recall_hist.csv",
                {"workflow", "objective", "samples", "algorithm", "top_n",
                 "recall_pct"});
  for (const auto& cell : cells) {
    const std::size_t w = env.index_of(cell.wf);
    std::cout << "\n" << cell.wf << ": "
              << tuner::objective_name(cell.obj) << " (" << cell.budget
              << " spls)\n";
    Table table({"algorithm", "top1", "top2", "top3", "top4", "top5",
                 "top6", "top7", "top8", "top9"});
    for (const char* algo : {"CEAL", "ALpH"}) {
      const auto s = bench::run_cell(env, algo, w, cell.obj, cell.budget,
                                     /*history=*/true);
      std::vector<std::string> row{algo};
      for (std::size_t n = 1; n <= 9; ++n) {
        row.push_back(bench::fmt(s.mean_recall[n - 1], 0));
        csv.add_row({cell.wf, tuner::objective_name(cell.obj),
                     std::to_string(cell.budget), algo, std::to_string(n),
                     bench::fmt(s.mean_recall[n - 1], 2)});
      }
      table.add_row(row);
    }
    std::cout << table;
  }
  std::cout << "\nPaper shape: CEAL always more robust than ALpH; for GP "
               "computer time @25 samples the paper's CEAL\nscores 100% at "
               "top-1/2/3. Series in fig11_recall_hist.csv.\n";
  return 0;
}
