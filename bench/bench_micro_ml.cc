// Micro-benchmarks of the ML substrate (google-benchmark): tree and
// ensemble training/prediction at surrogate-realistic sizes.
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "ml/gbt.h"
#include "ml/knn.h"
#include "ml/random_forest.h"

namespace {

using namespace ceal;

ml::Dataset synth(std::size_t n, std::size_t d, Rng& rng) {
  ml::Dataset data(d);
  std::vector<double> x(d);
  for (std::size_t i = 0; i < n; ++i) {
    double y = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      x[j] = rng.uniform(0.0, 100.0);
      y += (j + 1) * x[j];
    }
    data.add(x, y + rng.normal(0.0, 5.0));
  }
  return data;
}

void BM_GbtFit(benchmark::State& state) {
  Rng rng(1);
  const auto data = synth(static_cast<std::size_t>(state.range(0)), 7, rng);
  for (auto _ : state) {
    ml::GradientBoostedTrees model(
        ml::GradientBoostedTrees::surrogate_defaults());
    Rng fit_rng(2);
    model.fit(data, fit_rng);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GbtFit)->Arg(25)->Arg(50)->Arg(100)->Arg(500);

void BM_GbtPredict(benchmark::State& state) {
  Rng rng(3);
  const auto data = synth(100, 7, rng);
  ml::GradientBoostedTrees model(
      ml::GradientBoostedTrees::surrogate_defaults());
  model.fit(data, rng);
  const std::vector<double> x(7, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
}
BENCHMARK(BM_GbtPredict);

void BM_GbtPredictPool(benchmark::State& state) {
  // The per-iteration cost of scoring a 2000-entry sample pool.
  Rng rng(4);
  const auto train = synth(50, 7, rng);
  const auto pool = synth(2000, 7, rng);
  ml::GradientBoostedTrees model(
      ml::GradientBoostedTrees::surrogate_defaults());
  model.fit(train, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_all(pool));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_GbtPredictPool);

void BM_RandomForestFit(benchmark::State& state) {
  Rng rng(5);
  const auto data = synth(static_cast<std::size_t>(state.range(0)), 7, rng);
  for (auto _ : state) {
    ml::RandomForest model;
    Rng fit_rng(6);
    model.fit(data, fit_rng);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(50)->Arg(200);

void BM_KnnPredict(benchmark::State& state) {
  Rng rng(7);
  const auto data = synth(static_cast<std::size_t>(state.range(0)), 7, rng);
  ml::KnnRegressor model;
  model.fit(data, rng);
  const std::vector<double> x(7, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
}
BENCHMARK(BM_KnnPredict)->Arg(500)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
