// Micro-benchmarks of the ML substrate (google-benchmark): tree and
// ensemble training/prediction at surrogate-realistic sizes.
//
// Besides the console table, the run writes machine-readable results to
// BENCH_micro_ml.json in the working directory (see docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include "bench/common.h"

#include <string>
#include <string_view>
#include <vector>

#include "core/rng.h"
#include "ml/gbt.h"
#include "ml/knn.h"
#include "ml/random_forest.h"

namespace {

using namespace ceal;

ml::Dataset synth(std::size_t n, std::size_t d, Rng& rng) {
  ml::Dataset data(d);
  std::vector<double> x(d);
  for (std::size_t i = 0; i < n; ++i) {
    double y = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      x[j] = rng.uniform(0.0, 100.0);
      y += (j + 1) * x[j];
    }
    data.add(x, y + rng.normal(0.0, 5.0));
  }
  return data;
}

void BM_GbtFit(benchmark::State& state) {
  Rng rng(1);
  const auto data = synth(static_cast<std::size_t>(state.range(0)), 7, rng);
  for (auto _ : state) {
    ml::GradientBoostedTrees model(
        ml::GradientBoostedTrees::surrogate_defaults());
    Rng fit_rng(2);
    model.fit(data, fit_rng);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GbtFit)->Arg(25)->Arg(50)->Arg(100)->Arg(500);

void BM_GbtPredict(benchmark::State& state) {
  Rng rng(3);
  const auto data = synth(100, 7, rng);
  ml::GradientBoostedTrees model(
      ml::GradientBoostedTrees::surrogate_defaults());
  model.fit(data, rng);
  const std::vector<double> x(7, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
}
BENCHMARK(BM_GbtPredict);

void BM_GbtPredictPool(benchmark::State& state) {
  // The per-iteration cost of scoring a 2000-entry sample pool.
  Rng rng(4);
  const auto train = synth(50, 7, rng);
  const auto pool = synth(2000, 7, rng);
  ml::GradientBoostedTrees model(
      ml::GradientBoostedTrees::surrogate_defaults());
  model.fit(train, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_all(pool));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_GbtPredictPool);

// ---------------------------------------------------------------------
// Exact vs histogram vs quantized trainer, at the workload from
// docs/PERFORMANCE.md: n = 512 rows, 150 boosting rounds, depth-5 trees.
// state.range(0) selects the TreeMethod so all variants share one body.

ml::TreeMethod method_arg(std::int64_t arg) {
  switch (arg) {
    case 0: return ml::TreeMethod::kExact;
    case 1: return ml::TreeMethod::kHist;
    default: return ml::TreeMethod::kQuantized;
  }
}

const char* method_label(std::int64_t arg) {
  switch (arg) {
    case 0: return "exact";
    case 1: return "hist";
    default: return "quantized";
  }
}

ml::GbtParams deep_fit_params(ml::TreeMethod method) {
  ml::GbtParams p;
  p.n_rounds = 150;
  p.learning_rate = 0.1;
  p.tree.max_depth = 5;
  p.tree.method = method;
  return p;
}

void BM_GbtFit512(benchmark::State& state) {
  Rng rng(8);
  const auto data = synth(512, 7, rng);
  const auto params = deep_fit_params(method_arg(state.range(0)));
  for (auto _ : state) {
    ml::GradientBoostedTrees model(params);
    Rng fit_rng(9);
    model.fit(data, fit_rng);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * 512);
  state.SetLabel(method_label(state.range(0)));
}
BENCHMARK(BM_GbtFit512)->Arg(0)->Arg(1)->Arg(2);

// Scoring a 2000-configuration pool: one predict() call per row (the
// pre-cache tuner loop) vs the batched predict_all path.
void BM_GbtPredictPoolSerial(benchmark::State& state) {
  Rng rng(10);
  const auto train = synth(512, 7, rng);
  const auto pool = synth(2000, 7, rng);
  ml::GradientBoostedTrees model(deep_fit_params(ml::TreeMethod::kExact));
  model.fit(train, rng);
  std::vector<double> out(pool.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      out[i] = model.predict(pool.row(i));
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_GbtPredictPoolSerial);

void BM_GbtPredictPoolBatch(benchmark::State& state) {
  Rng rng(10);
  const auto train = synth(512, 7, rng);
  const auto pool = synth(2000, 7, rng);
  ml::GradientBoostedTrees model(deep_fit_params(ml::TreeMethod::kExact));
  model.fit(train, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_all(pool));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_GbtPredictPoolBatch);

// Same batch scoring through the flattened CompiledForest (bitwise
// identical output, branch-light contiguous layout).
void BM_GbtPredictPoolCompiled(benchmark::State& state) {
  Rng rng(10);
  const auto train = synth(512, 7, rng);
  const auto pool = synth(2000, 7, rng);
  auto params = deep_fit_params(ml::TreeMethod::kExact);
  params.compile_predictor = true;
  ml::GradientBoostedTrees model(params);
  model.fit(train, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_all(pool));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_GbtPredictPoolCompiled);

void BM_RandomForestFit(benchmark::State& state) {
  Rng rng(5);
  const auto data = synth(static_cast<std::size_t>(state.range(0)), 7, rng);
  for (auto _ : state) {
    ml::RandomForest model;
    Rng fit_rng(6);
    model.fit(data, fit_rng);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(50)->Arg(200);

void BM_KnnPredict(benchmark::State& state) {
  Rng rng(7);
  const auto data = synth(static_cast<std::size_t>(state.range(0)), 7, rng);
  ml::KnnRegressor model;
  model.fit(data, rng);
  const std::vector<double> x(7, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
}
BENCHMARK(BM_KnnPredict)->Arg(500)->Arg(2000);

}  // namespace

// Custom main (shared helper): mirror the console output into
// BENCH_micro_ml.json with the common "ceal" metadata header by default.
// Explicit --benchmark_out flags still win.
int main(int argc, char** argv) {
  auto bench_args =
      ceal::bench::make_bench_args(argc, argv, "BENCH_micro_ml.json");
  benchmark::Initialize(&bench_args.argc, bench_args.argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_args.argc,
                                             bench_args.argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!bench_args.json_path.empty()) {
    ceal::bench::annotate_bench_json(bench_args.json_path);
  }
  return 0;
}
