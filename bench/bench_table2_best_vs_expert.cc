// Table 2: best configuration in the 2000-sample pool vs the
// expert-recommended configuration, per workflow and objective.
#include <iostream>

#include "bench/common.h"
#include "core/table.h"

int main() {
  using namespace ceal;
  using tuner::Objective;
  bench::banner("Best vs expert configurations (Table 2)", "Table 2");
  const auto& env = bench::Env::instance();

  Table table({"wf", "objective", "option", "performance", "configuration"});
  for (std::size_t w = 0; w < env.workload_count(); ++w) {
    const auto& wl = env.workload(w);
    const auto& pool = env.pool(w);
    for (const auto obj :
         {Objective::kExecTime, Objective::kComputerTime}) {
      const bool exec = obj == Objective::kExecTime;
      const std::size_t best = pool.best_index(obj);
      const std::string unit = exec ? " secs" : " core-hrs";
      table.add_row({wl.workflow.name(), exec ? "Exec. time" : "Comp. time",
                     "Best",
                     bench::fmt(pool.measured(obj)[best], exec ? 1 : 3) +
                         unit,
                     config::to_string(pool.configs[best])});
      const auto& expert = exec ? wl.expert_exec : wl.expert_comp;
      const double expert_perf =
          tuner::metric(wl.workflow.expected(expert), obj);
      table.add_row({"", "", "Expert",
                     bench::fmt(expert_perf, exec ? 1 : 3) + unit,
                     config::to_string(expert)});
    }
  }
  std::cout << table;
  std::cout << "\nPaper (Table 2): LV exec 24.6/36.8 s, comp 3.13/4.07 ch; "
               "HS exec 6.02/28.0 s, comp 0.517/0.894 ch;\n"
               "GP exec 98.7/102 s, comp 6.95/5.85 ch (best/expert). "
               "Shapes to match: experts lag for LV and HS,\n"
               "GP exec is flat (G-Plot bottleneck) and the GP comp expert "
               "beats the sampled pool.\n";
  return 0;
}
