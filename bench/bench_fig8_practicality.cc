// Fig. 8: practicality of auto-tuning without histories — the least
// number of workflow uses needed to recoup the tuning cost (N = c / Δp,
// §7.2.3), for AL vs CEAL optimising computer time of LV and HS with 50
// training samples. (RS and GEIST do not beat the expert at this budget
// in the paper, so their practicality is unbounded.)
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"

int main() {
  using namespace ceal;
  using tuner::Objective;
  bench::banner("Practicality without histories (least number of uses)",
                "Fig. 8");
  const auto& env = bench::Env::instance();

  Table table({"workflow", "algorithm", "least uses", "mean cost (ch)",
               "mean improvement (ch/run)", "beats expert"});
  CsvWriter csv("fig8_practicality.csv",
                {"workflow", "algorithm", "least_uses", "cost_comp_ch",
                 "improvement_ch", "frac_beat_expert"});
  for (const char* wf : {"LV", "HS"}) {
    const std::size_t w = env.index_of(wf);
    for (const char* algo : {"AL", "CEAL"}) {
      const auto s = bench::run_cell(env, algo, w,
                                     Objective::kComputerTime, 50,
                                     /*history=*/false);
      table.add_row({wf, algo, bench::fmt(s.least_uses, 0),
                     bench::fmt(s.mean_cost_comp_ch, 2),
                     bench::fmt(s.mean_improvement, 3),
                     bench::fmt(100.0 * s.frac_beat_expert, 0) + "%"});
      csv.add_row({wf, algo, bench::fmt(s.least_uses, 1),
                   bench::fmt(s.mean_cost_comp_ch, 3),
                   bench::fmt(s.mean_improvement, 4),
                   bench::fmt(s.frac_beat_expert, 3)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n\n" << table;
  std::cout << "\nPaper shape: CEAL needs fewer uses than AL to pay off "
               "(LV: 716 vs 782 in the paper) because its\ntraining "
               "samples are cheaper — the low-fidelity model steers it to "
               "fast configurations.\n";
  return 0;
}
