// Load benchmark of the serving layer: hundreds of interleaved tuning
// sessions multiplexed through one ServerCore, stepped round-robin the
// way a real `ceal_serve` deployment interleaves clients. Reports the
// p50/p99 latency of a single `session.step` request (including the
// protocol parse) and the sustained stepping throughput as custom
// counters, which ceal_report extracts as bench.<name>.step_p50_ms etc.
//
// The acceptance bar for the serving layer is that it sustains >= 200
// concurrently open sessions; the benchmark opens 240.
//
// Besides the console table, the run writes machine-readable results to
// BENCH_serve_load.json in the working directory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/json.h"
#include "core/stats.h"
#include "serve/server.h"

namespace {

using namespace ceal;

// Small per-session problems: the benchmark stresses the multiplexing
// layer, not the tuners. Every 8th session runs CEAL (surrogate fits
// make its steps much heavier than RS measurement steps), so the
// p50/p99 spread reflects a realistically mixed session population.
constexpr std::size_t kBudget = 6;
constexpr std::size_t kPoolSize = 60;
constexpr std::size_t kComponentSamples = 30;

std::string create_line(std::size_t i) {
  std::ostringstream os;
  os << "{\"op\":\"session.create\",\"id\":\"load-" << i
     << "\",\"workflow\":\"LV\",\"objective\":\"exec\",\"budget\":"
     << kBudget << ",\"algorithm\":\"" << (i % 8 == 0 ? "CEAL" : "RS")
     << "\",\"seed\":" << 1000 + i << ",\"pool_size\":" << kPoolSize
     << ",\"pool_seed\":1,\"component_samples\":" << kComponentSamples
     << "}";
  return os.str();
}

/// Sample quantile via the shared core/stats.h helper — the same rank
/// definition server.metrics histogram quantiles use, so bench numbers
/// and live exposition agree. Empty samples report 0.
double sample_quantile(const std::vector<double>& sample, double q) {
  if (sample.empty()) return 0.0;
  return ceal::quantile(sample, q);
}

void expect_ok(const std::string& response_line) {
  const json::Value response = json::Value::parse(response_line);
  if (!response.at("ok").as_bool()) {
    throw std::runtime_error("serve request failed: " + response_line);
  }
}

void BM_ServeInterleavedSessions(benchmark::State& state) {
  const std::size_t sessions = static_cast<std::size_t>(state.range(0));
  std::vector<double> step_ms;
  std::size_t total_steps = 0;
  double stepping_seconds = 0.0;
  for (auto _ : state) {
    serve::ServerCore core{serve::ServerOptions{}};
    for (std::size_t i = 0; i < sessions; ++i) {
      expect_ok(core.handle_line(create_line(i)));
    }
    // Round-robin single steps until every session has consumed its
    // budget (one extra round observes the done state, as clients do).
    for (std::size_t round = 0; round <= kBudget; ++round) {
      for (std::size_t i = 0; i < sessions; ++i) {
        const std::string request =
            "{\"op\":\"session.step\",\"id\":\"load-" + std::to_string(i) +
            "\"}";
        const auto start = std::chrono::steady_clock::now();
        expect_ok(core.handle_line(request));
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        step_ms.push_back(elapsed.count() * 1e3);
        stepping_seconds += elapsed.count();
        ++total_steps;
      }
    }
  }
  state.counters["sessions"] = static_cast<double>(sessions);
  state.counters["step_p50_ms"] = sample_quantile(step_ms, 0.50);
  state.counters["step_p99_ms"] = sample_quantile(step_ms, 0.99);
  state.counters["steps_per_second"] =
      stepping_seconds > 0.0 ? total_steps / stepping_seconds : 0.0;
}
BENCHMARK(BM_ServeInterleavedSessions)
    ->Arg(240)
    ->Unit(benchmark::kMillisecond);

// The same interleaved script pushed through serve_stream (the real
// daemon loop: reader, per-session strands on the thread pool, ordered
// writer) at 1 and 4 threads — the wall-clock ratio is the
// multiplexing speedup a threaded deployment buys.
void BM_ServeStreamThreads(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kStreamSessions = 240;
  std::ostringstream script;
  for (std::size_t i = 0; i < kStreamSessions; ++i) {
    script << create_line(i) << "\n";
  }
  for (std::size_t round = 0; round <= kBudget; ++round) {
    for (std::size_t i = 0; i < kStreamSessions; ++i) {
      script << "{\"op\":\"session.step\",\"id\":\"load-" << i << "\"}\n";
    }
  }
  script << "{\"op\":\"server.stats\"}\n";
  const std::string input = script.str();
  for (auto _ : state) {
    serve::ServerCore core{serve::ServerOptions{}};
    std::istringstream in(input);
    std::ostringstream out;
    serve::serve_stream(core, in, out, threads);
    benchmark::DoNotOptimize(out.str());
  }
  state.counters["sessions"] = static_cast<double>(kStreamSessions);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ServeStreamThreads)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto bench_args =
      ceal::bench::make_bench_args(argc, argv, "BENCH_serve_load.json");
  benchmark::Initialize(&bench_args.argc, bench_args.argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_args.argc,
                                             bench_args.argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!bench_args.json_path.empty()) {
    ceal::bench::annotate_bench_json(bench_args.json_path);
  }
  return 0;
}
