// Fig. 10: CEAL vs ALpH (black-box component combination, §4) with
// historical component measurements.
//   (a) execution time: LV and HS at 50 and 100 samples
//   (b) computer time: LV, HS, GP at 25 and 50 samples
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"

int main() {
  using namespace ceal;
  using tuner::Objective;
  bench::banner("CEAL vs ALpH with historical measurements", "Fig. 10");
  const auto& env = bench::Env::instance();

  Table table(
      {"workflow", "objective", "samples", "CEAL", "ALpH", "CEAL wins"});
  CsvWriter csv("fig10_ceal_vs_alph.csv",
                {"workflow", "objective", "samples", "algorithm",
                 "norm_perf"});

  struct Cell {
    const char* wf;
    Objective obj;
    std::size_t budget;
  };
  std::vector<Cell> cells;
  for (const char* wf : {"LV", "HS"}) {
    for (const std::size_t m : {50, 100}) {
      cells.push_back({wf, Objective::kExecTime, m});
    }
  }
  for (const char* wf : {"LV", "HS", "GP"}) {
    for (const std::size_t m : {25, 50}) {
      cells.push_back({wf, Objective::kComputerTime, m});
    }
  }

  for (const auto& cell : cells) {
    const std::size_t w = env.index_of(cell.wf);
    const auto ceal_s = bench::run_cell(env, "CEAL", w, cell.obj,
                                        cell.budget, /*history=*/true);
    const auto alph_s = bench::run_cell(env, "ALpH", w, cell.obj,
                                        cell.budget, /*history=*/true);
    table.add_row({cell.wf, tuner::objective_name(cell.obj),
                   std::to_string(cell.budget),
                   bench::fmt(ceal_s.mean_norm_perf),
                   bench::fmt(alph_s.mean_norm_perf),
                   ceal_s.mean_norm_perf <= alph_s.mean_norm_perf ? "yes"
                                                                  : "no"});
    for (const auto* s : {&ceal_s, &alph_s}) {
      csv.add_row({cell.wf, tuner::objective_name(cell.obj),
                   std::to_string(cell.budget), s->algorithm,
                   bench::fmt(s->mean_norm_perf)});
    }
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n" << table;
  std::cout << "\nPaper shape: CEAL superior to ALpH in all cases; at 25 "
               "samples the paper reports computer time\n14.7% (LV), 32.6% "
               "(HS), 5.6% (GP) below ALpH's.\n";
  return 0;
}
