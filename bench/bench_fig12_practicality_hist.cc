// Fig. 12: practicality with historical measurements — least number of
// uses for CEAL vs ALpH:
//   (a) execution time: LV @ 50 and HS @ 100 samples
//   (b) computer time: LV and HS @ 25 and 50 samples
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"

int main() {
  using namespace ceal;
  using tuner::Objective;
  bench::banner("Practicality with histories (least number of uses)",
                "Fig. 12");
  const auto& env = bench::Env::instance();

  Table table({"workflow", "objective", "samples", "CEAL", "ALpH"});
  CsvWriter csv("fig12_practicality_hist.csv",
                {"workflow", "objective", "samples", "algorithm",
                 "least_uses", "frac_beat_expert"});

  struct Cell {
    const char* wf;
    Objective obj;
    std::size_t budget;
  };
  std::vector<Cell> cells{{"LV", Objective::kExecTime, 50},
                          {"HS", Objective::kExecTime, 100}};
  for (const char* wf : {"LV", "HS"}) {
    for (const std::size_t m : {25, 50}) {
      cells.push_back({wf, Objective::kComputerTime, m});
    }
  }

  for (const auto& cell : cells) {
    const std::size_t w = env.index_of(cell.wf);
    std::vector<std::string> row{cell.wf, tuner::objective_name(cell.obj),
                                 std::to_string(cell.budget)};
    for (const char* algo : {"CEAL", "ALpH"}) {
      const auto s = bench::run_cell(env, algo, w, cell.obj, cell.budget,
                                     /*history=*/true);
      row.push_back(bench::fmt(s.least_uses, 0));
      csv.add_row({cell.wf, tuner::objective_name(cell.obj),
                   std::to_string(cell.budget), algo,
                   bench::fmt(s.least_uses, 1),
                   bench::fmt(s.frac_beat_expert, 3)});
      std::cout << "." << std::flush;
    }
    table.add_row(row);
  }
  std::cout << "\n\n" << table;
  std::cout << "\nPaper shape: CEAL recoups its cost in fewer uses than "
               "ALpH (paper: 164 runs for LV exec @50,\n160 for LV comp "
               "@25).\n";
  return 0;
}
