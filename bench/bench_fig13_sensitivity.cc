// Fig. 13: CEAL hyper-parameter sensitivity on LV computer time with 50
// training samples, reporting the actual computer time (core-hours) of
// the predicted best configuration:
//   (a) iterations I = 1..10, with and without histories
//   (b) random-sample fraction m0/m swept 5%..95%
//   (c) component-run fraction mR/m swept 5%..85% (no-history mode)
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"
#include "tuner/ceal.h"
#include "tuner/evaluation.h"

namespace {

// Mean actual computer time (core-hours) of the recommendation.
double mean_comp_ch(const ceal::bench::Env& env, std::size_t w,
                    const ceal::tuner::CealParams& params, bool history) {
  using namespace ceal;
  const auto prob = env.problem(w, tuner::Objective::kComputerTime, history);
  const tuner::Ceal ceal_algo(params);
  const auto s = tuner::evaluate(prob, ceal_algo, 50,
                                 bench::Env::replications(),
                                 bench::kEvalSeed);
  const auto& truth = prob.pool->truth(prob.objective);
  const double best = truth[prob.pool->best_truth_index(prob.objective)];
  return s.mean_norm_perf * best;
}

}  // namespace

int main() {
  using namespace ceal;
  using tuner::CealParams;
  bench::banner("CEAL hyper-parameter sensitivity (LV computer time, 50 "
                "samples)",
                "Fig. 13");
  const auto& env = bench::Env::instance();
  const std::size_t lv = env.index_of("LV");
  CsvWriter csv("fig13_sensitivity.csv",
                {"panel", "setting", "history", "computer_time_ch"});

  // (a) iterations.
  {
    Table table({"I", "w/o histories (ch)", "w/ histories (ch)"});
    for (std::size_t iters = 1; iters <= 10; ++iters) {
      CealParams no_hist = CealParams::no_history();
      no_hist.iterations = iters;
      CealParams hist = CealParams::with_history();
      hist.iterations = iters;
      const double a = mean_comp_ch(env, lv, no_hist, false);
      const double b = mean_comp_ch(env, lv, hist, true);
      table.add_row({std::to_string(iters), bench::fmt(a, 3),
                     bench::fmt(b, 3)});
      csv.add_row({"iterations", std::to_string(iters), "no",
                   bench::fmt(a, 4)});
      csv.add_row({"iterations", std::to_string(iters), "yes",
                   bench::fmt(b, 4)});
      std::cout << "." << std::flush;
    }
    std::cout << "\n(a) iterations I\n" << table << "\n";
  }

  // (b) m0 fraction.
  {
    Table table({"m0/m (%)", "w/o histories (ch)", "w/ histories (ch)"});
    for (int pct = 5; pct <= 95; pct += 10) {
      CealParams no_hist = CealParams::no_history();
      no_hist.m0_fraction = pct / 100.0;
      CealParams hist = CealParams::with_history();
      hist.m0_fraction = pct / 100.0;
      // m0 + mR must stay under the budget in no-history mode.
      const bool feasible = no_hist.m0_fraction + no_hist.mR_fraction < 0.95;
      const double a =
          feasible ? mean_comp_ch(env, lv, no_hist, false) : 0.0;
      const double b = mean_comp_ch(env, lv, hist, true);
      table.add_row({std::to_string(pct),
                     feasible ? bench::fmt(a, 3) : "n/a",
                     bench::fmt(b, 3)});
      if (feasible) {
        csv.add_row({"m0", std::to_string(pct), "no", bench::fmt(a, 4)});
      }
      csv.add_row({"m0", std::to_string(pct), "yes", bench::fmt(b, 4)});
      std::cout << "." << std::flush;
    }
    std::cout << "\n(b) random-sample fraction m0/m\n" << table << "\n";
  }

  // (c) mR fraction (no-history mode only; with histories mR = 0).
  {
    Table table({"mR/m (%)", "w/o histories (ch)"});
    for (int pct = 5; pct <= 85; pct += 10) {
      CealParams params = CealParams::no_history();
      params.mR_fraction = pct / 100.0;
      const double a = mean_comp_ch(env, lv, params, false);
      table.add_row({std::to_string(pct), bench::fmt(a, 3)});
      csv.add_row({"mR", std::to_string(pct), "no", bench::fmt(a, 4)});
      std::cout << "." << std::flush;
    }
    std::cout << "\n(c) component-run fraction mR/m\n" << table;
  }
  std::cout << "\nPaper shape: converges by I ~ 8 without histories "
               "(faster with); flat over a wide m0 range;\nflat for mR in "
               "30-80%. Series in fig13_sensitivity.csv.\n";
  return 0;
}
