// Fig. 7: robustness (recall scores for top 1..9) of RS, GEIST, AL, CEAL
// without historical measurements:
//   (a) execution time of LV and HS @ 100 samples
//   (b) computer time of LV @ 50 and GP @ 50 samples
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"

int main() {
  using namespace ceal;
  using tuner::Objective;
  bench::banner("Robustness of auto-tuning without histories (recall)",
                "Fig. 7");
  const auto& env = bench::Env::instance();

  struct Cell {
    const char* wf;
    Objective obj;
    std::size_t budget;
  };
  const Cell cells[] = {
      {"LV", Objective::kExecTime, 100},
      {"HS", Objective::kExecTime, 100},
      {"LV", Objective::kComputerTime, 50},
      {"GP", Objective::kComputerTime, 50},
  };
  const char* algos[] = {"RS", "GEIST", "AL", "CEAL"};

  CsvWriter csv("fig7_recall_no_hist.csv",
                {"workflow", "objective", "samples", "algorithm", "top_n",
                 "recall_pct"});
  for (const auto& cell : cells) {
    const std::size_t w = env.index_of(cell.wf);
    std::cout << "\n" << cell.wf << ": "
              << tuner::objective_name(cell.obj) << " ("
              << cell.budget << " spls)\n";
    Table table({"algorithm", "top1", "top2", "top3", "top4", "top5",
                 "top6", "top7", "top8", "top9"});
    for (const char* algo : algos) {
      const auto s = bench::run_cell(env, algo, w, cell.obj, cell.budget,
                                     /*history=*/false);
      std::vector<std::string> row{algo};
      for (std::size_t n = 1; n <= 9; ++n) {
        row.push_back(bench::fmt(s.mean_recall[n - 1], 0));
        csv.add_row({cell.wf, tuner::objective_name(cell.obj),
                     std::to_string(cell.budget), algo, std::to_string(n),
                     bench::fmt(s.mean_recall[n - 1], 2)});
      }
      table.add_row(row);
    }
    std::cout << table;
  }
  std::cout << "\nPaper shape: CEAL's recall dominates at every depth; "
               "top-1 recall for LV exec @100 is 63% for CEAL vs\n2% (RS), "
               "15% (GEIST), 39% (AL). Series in fig7_recall_no_hist.csv.\n";
  return 0;
}
