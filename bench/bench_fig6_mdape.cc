// Fig. 6: prediction accuracy (MdAPE) of the final surrogate models of
// RS, GEIST, AL, and CEAL, over the top 2% of test configurations and
// over all of them. Cells follow the paper: LV computer time @ 50
// samples, HS execution time @ 100, GP computer time @ 25.
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"

int main() {
  using namespace ceal;
  using tuner::Objective;
  bench::banner("Prediction accuracy of auto-tuned models (MdAPE)",
                "Fig. 6");
  const auto& env = bench::Env::instance();

  struct Cell {
    const char* wf;
    Objective obj;
    std::size_t budget;
  };
  const Cell cells[] = {
      {"LV", Objective::kComputerTime, 50},
      {"HS", Objective::kExecTime, 100},
      {"GP", Objective::kComputerTime, 25},
  };
  const char* algos[] = {"RS", "GEIST", "AL", "CEAL"};

  Table table({"cell", "test set", "RS", "GEIST", "AL", "CEAL"});
  CsvWriter csv("fig6_mdape.csv",
                {"workflow", "objective", "samples", "algorithm",
                 "mdape_top2_pct", "mdape_all_pct"});
  for (const auto& cell : cells) {
    const std::size_t w = env.index_of(cell.wf);
    std::vector<std::string> top_row, all_row;
    for (const char* algo : algos) {
      const auto s = bench::run_cell(env, algo, w, cell.obj, cell.budget,
                                     /*history=*/false);
      top_row.push_back(bench::fmt(s.mean_mdape_top2, 1));
      all_row.push_back(bench::fmt(s.mean_mdape_all, 1));
      csv.add_row({cell.wf, tuner::objective_name(cell.obj),
                   std::to_string(cell.budget), algo,
                   bench::fmt(s.mean_mdape_top2, 2),
                   bench::fmt(s.mean_mdape_all, 2)});
      std::cout << "." << std::flush;
    }
    const std::string name = std::string(cell.wf) + " " +
                             tuner::objective_name(cell.obj) + " (" +
                             std::to_string(cell.budget) + ")";
    table.add_row({name, "Top 2%", top_row[0], top_row[1], top_row[2],
                   top_row[3]});
    table.add_row({"", "All", all_row[0], all_row[1], all_row[2],
                   all_row[3]});
  }
  std::cout << "\n\n" << table;
  std::cout << "\nPaper shape: CEAL's MdAPE on the top 2% is far below the "
               "others', while on all configurations it is\ncomparable or "
               "slightly higher — the budget goes into accuracy where the "
               "searcher needs it (§7.4.2).\n";
  return 0;
}
