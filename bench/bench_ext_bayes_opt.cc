// Future-work extension (§9): Bayesian optimisation as the black-box
// technique. Compares plain BO (bootstrap-ensemble LCB), BO-CEAL (BO
// bootstrapped by the combined component models), AL, and CEAL on LV for
// both objectives with historical component measurements.
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"
#include "tuner/active_learning.h"
#include "tuner/bayes_opt.h"
#include "tuner/ceal.h"
#include "tuner/evaluation.h"

int main() {
  using namespace ceal;
  using tuner::Objective;
  bench::banner("Extension: Bayesian optimisation in the bootstrapping "
                "method",
                "§9 future work");
  const auto& env = bench::Env::instance();
  const std::size_t lv = env.index_of("LV");

  tuner::ActiveLearning al;
  tuner::Ceal ceal_algo;
  tuner::BayesOpt bo;
  tuner::BayesOptParams boceal_params;
  boceal_params.bootstrap_with_low_fidelity = true;
  tuner::BayesOpt bo_ceal(boceal_params);

  Table table({"objective", "samples", "AL", "BO", "BO-CEAL", "CEAL"});
  CsvWriter csv("ext_bayes_opt.csv",
                {"objective", "samples", "algorithm", "norm_perf",
                 "recall_top1"});
  for (const auto [obj, budget] :
       {std::pair{Objective::kExecTime, std::size_t{50}},
        std::pair{Objective::kComputerTime, std::size_t{25}}}) {
    const auto prob = env.problem(lv, obj, /*history=*/true);
    std::vector<std::string> row{tuner::objective_name(obj),
                                 std::to_string(budget)};
    for (const tuner::AutoTuner* algo :
         {static_cast<const tuner::AutoTuner*>(&al),
          static_cast<const tuner::AutoTuner*>(&bo),
          static_cast<const tuner::AutoTuner*>(&bo_ceal),
          static_cast<const tuner::AutoTuner*>(&ceal_algo)}) {
      const auto s = tuner::evaluate(prob, *algo, budget,
                                     bench::Env::replications(),
                                     bench::kEvalSeed);
      row.push_back(bench::fmt(s.mean_norm_perf));
      csv.add_row({tuner::objective_name(obj), std::to_string(budget),
                   s.algorithm, bench::fmt(s.mean_norm_perf),
                   bench::fmt(s.mean_recall[0], 1)});
      std::cout << "." << std::flush;
    }
    table.add_row(row);
  }
  std::cout << "\n\n" << table;
  std::cout << "\nExpected shape: bootstrapping helps BO the same way it "
               "helps AL — BO-CEAL tracks CEAL and beats\nplain BO, "
               "confirming the method is black-box-technique agnostic "
               "(§3).\n";
  return 0;
}
