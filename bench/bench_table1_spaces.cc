// Table 1: parameter spaces of the three target workflows, plus the
// valid-configuration counts quoted in §7.1 (estimated by Monte Carlo for
// the constrained grids).
#include <iostream>
#include <sstream>

#include "bench/common.h"
#include "core/rng.h"
#include "core/table.h"

int main() {
  using namespace ceal;
  bench::banner("Parameter spaces (Table 1) and valid-space sizes (§7.1)",
                "Table 1");
  const auto& env = bench::Env::instance();

  Table table({"workflow", "application", "parameter", "options"});
  for (std::size_t w = 0; w < env.workload_count(); ++w) {
    const auto& wf = env.workload(w).workflow;
    for (std::size_t j = 0; j < wf.component_count(); ++j) {
      const auto& app = wf.app(j);
      for (std::size_t p = 0; p < app.space().dimension(); ++p) {
        const auto& param = app.space().parameter(p);
        std::ostringstream opts;
        if (param.cardinality() <= 8) {
          for (std::size_t k = 0; k < param.cardinality(); ++k) {
            if (k) opts << ", ";
            opts << param.value(k);
          }
        } else {
          opts << param.value(0) << ", " << param.value(1) << ", ..., "
               << param.value(param.cardinality() - 1);
        }
        table.add_row({p == 0 && j == 0 ? wf.name() : "",
                       p == 0 ? app.name() : "", param.name(), opts.str()});
      }
    }
  }
  std::cout << table << "\n";

  Table sizes({"workflow", "application", "raw grid", "valid (est.)"});
  Rng rng(1);
  for (std::size_t w = 0; w < env.workload_count(); ++w) {
    const auto& wf = env.workload(w).workflow;
    double joint_valid = 1.0;
    for (std::size_t j = 0; j < wf.component_count(); ++j) {
      const auto& app = wf.app(j);
      const double raw = static_cast<double>(app.space().raw_size());
      const double frac =
          app.space().raw_size() > 1
              ? app.space().estimate_valid_fraction(rng, 20000)
              : 1.0;
      joint_valid *= raw * frac;
      std::ostringstream raw_s, valid_s;
      raw_s.precision(3);
      raw_s << raw;
      valid_s.precision(3);
      valid_s << raw * frac;
      sizes.add_row({j == 0 ? wf.name() : "", app.name(), raw_s.str(),
                     valid_s.str()});
    }
    std::ostringstream joint;
    joint.precision(3);
    joint << joint_valid;
    sizes.add_row({"", "-> product of components", "", joint.str()});
  }
  std::cout << sizes;
  std::cout << "\nPaper quotes: LV 2.9e9 (LAMMPS 7.6e4, Voro++ 7.6e4); "
               "HS 5.1e10 (Heat 5.4e6, StageWrite 1.9e4);\n"
               "GP 8.5e7 (Gray-Scott 1.9e4, PDF 9.0e3).\n";
  return 0;
}
