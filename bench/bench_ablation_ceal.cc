// Ablation study of CEAL's design choices (DESIGN.md §6):
//   full            — Algorithm 1 as shipped
//   no-switch       — never promote M_H for sample selection
//   no-topup        — no random-sample injection on M_H bias (lines 20-22)
//   no-ensemble     — final ranking by M_H alone (strict line 28)
//   no-low-fidelity — m_R = 5% (component models nearly untrained), the
//                     closest Alg.-1-shaped analogue of dropping Phase 1
// on LV for both objectives, without histories.
#include <iostream>

#include "bench/common.h"
#include "core/csv.h"
#include "core/table.h"
#include "tuner/ceal.h"
#include "tuner/evaluation.h"

int main() {
  using namespace ceal;
  using tuner::CealParams;
  using tuner::Objective;
  bench::banner("CEAL design-choice ablations (LV, no histories)",
                "DESIGN.md ablation index");
  const auto& env = bench::Env::instance();
  const std::size_t lv = env.index_of("LV");

  struct Variant {
    const char* name;
    CealParams params;
  };
  std::vector<Variant> variants;
  variants.push_back({"full", CealParams::no_history()});
  {
    CealParams p = CealParams::no_history();
    p.enable_switch_detection = false;
    variants.push_back({"no-switch", p});
  }
  {
    CealParams p = CealParams::no_history();
    p.enable_random_topup = false;
    variants.push_back({"no-topup", p});
  }
  {
    CealParams p = CealParams::no_history();
    p.ensemble_final = false;
    variants.push_back({"no-ensemble", p});
  }
  {
    CealParams p = CealParams::no_history();
    p.mR_fraction = 0.05;
    variants.push_back({"no-low-fidelity", p});
  }

  Table table({"variant", "exec norm (m=50)", "comp norm (m=25)"});
  CsvWriter csv("ablation_ceal.csv",
                {"variant", "objective", "samples", "norm_perf"});
  for (const auto& variant : variants) {
    std::vector<std::string> row{variant.name};
    for (const auto [obj, budget] :
         {std::pair{Objective::kExecTime, std::size_t{50}},
          std::pair{Objective::kComputerTime, std::size_t{25}}}) {
      const tuner::Ceal algo(variant.params);
      const auto prob = env.problem(lv, obj, /*history=*/false);
      const auto s = tuner::evaluate(prob, algo, budget,
                                     bench::Env::replications(),
                                     bench::kEvalSeed);
      row.push_back(bench::fmt(s.mean_norm_perf));
      csv.add_row({variant.name, tuner::objective_name(obj),
                   std::to_string(budget), bench::fmt(s.mean_norm_perf)});
      std::cout << "." << std::flush;
    }
    table.add_row(row);
  }
  std::cout << "\n\n" << table;
  std::cout << "\nExpected shape: the full configuration is at least as "
               "good as every ablation; dropping the\nlow-fidelity "
               "bootstrap hurts the most.\n";
  return 0;
}
