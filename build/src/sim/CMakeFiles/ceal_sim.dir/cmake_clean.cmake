file(REMOVE_RECURSE
  "CMakeFiles/ceal_sim.dir/component_app.cc.o"
  "CMakeFiles/ceal_sim.dir/component_app.cc.o.d"
  "CMakeFiles/ceal_sim.dir/scaling.cc.o"
  "CMakeFiles/ceal_sim.dir/scaling.cc.o.d"
  "CMakeFiles/ceal_sim.dir/workflow.cc.o"
  "CMakeFiles/ceal_sim.dir/workflow.cc.o.d"
  "CMakeFiles/ceal_sim.dir/workloads.cc.o"
  "CMakeFiles/ceal_sim.dir/workloads.cc.o.d"
  "libceal_sim.a"
  "libceal_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
