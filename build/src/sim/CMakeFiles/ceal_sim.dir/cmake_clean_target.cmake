file(REMOVE_RECURSE
  "libceal_sim.a"
)
