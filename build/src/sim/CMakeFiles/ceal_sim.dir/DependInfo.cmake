
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/component_app.cc" "src/sim/CMakeFiles/ceal_sim.dir/component_app.cc.o" "gcc" "src/sim/CMakeFiles/ceal_sim.dir/component_app.cc.o.d"
  "/root/repo/src/sim/scaling.cc" "src/sim/CMakeFiles/ceal_sim.dir/scaling.cc.o" "gcc" "src/sim/CMakeFiles/ceal_sim.dir/scaling.cc.o.d"
  "/root/repo/src/sim/workflow.cc" "src/sim/CMakeFiles/ceal_sim.dir/workflow.cc.o" "gcc" "src/sim/CMakeFiles/ceal_sim.dir/workflow.cc.o.d"
  "/root/repo/src/sim/workloads.cc" "src/sim/CMakeFiles/ceal_sim.dir/workloads.cc.o" "gcc" "src/sim/CMakeFiles/ceal_sim.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ceal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ceal_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
