# Empty dependencies file for ceal_sim.
# This may be replaced when dependencies are built.
