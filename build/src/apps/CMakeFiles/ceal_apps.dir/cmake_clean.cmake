file(REMOVE_RECURSE
  "CMakeFiles/ceal_apps.dir/gray_scott.cc.o"
  "CMakeFiles/ceal_apps.dir/gray_scott.cc.o.d"
  "CMakeFiles/ceal_apps.dir/heat_transfer.cc.o"
  "CMakeFiles/ceal_apps.dir/heat_transfer.cc.o.d"
  "CMakeFiles/ceal_apps.dir/md_lite.cc.o"
  "CMakeFiles/ceal_apps.dir/md_lite.cc.o.d"
  "CMakeFiles/ceal_apps.dir/pdf_calc.cc.o"
  "CMakeFiles/ceal_apps.dir/pdf_calc.cc.o.d"
  "CMakeFiles/ceal_apps.dir/stage_write.cc.o"
  "CMakeFiles/ceal_apps.dir/stage_write.cc.o.d"
  "CMakeFiles/ceal_apps.dir/stream.cc.o"
  "CMakeFiles/ceal_apps.dir/stream.cc.o.d"
  "CMakeFiles/ceal_apps.dir/voronoi_lite.cc.o"
  "CMakeFiles/ceal_apps.dir/voronoi_lite.cc.o.d"
  "libceal_apps.a"
  "libceal_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
