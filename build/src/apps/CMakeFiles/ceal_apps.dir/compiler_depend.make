# Empty compiler generated dependencies file for ceal_apps.
# This may be replaced when dependencies are built.
