
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/gray_scott.cc" "src/apps/CMakeFiles/ceal_apps.dir/gray_scott.cc.o" "gcc" "src/apps/CMakeFiles/ceal_apps.dir/gray_scott.cc.o.d"
  "/root/repo/src/apps/heat_transfer.cc" "src/apps/CMakeFiles/ceal_apps.dir/heat_transfer.cc.o" "gcc" "src/apps/CMakeFiles/ceal_apps.dir/heat_transfer.cc.o.d"
  "/root/repo/src/apps/md_lite.cc" "src/apps/CMakeFiles/ceal_apps.dir/md_lite.cc.o" "gcc" "src/apps/CMakeFiles/ceal_apps.dir/md_lite.cc.o.d"
  "/root/repo/src/apps/pdf_calc.cc" "src/apps/CMakeFiles/ceal_apps.dir/pdf_calc.cc.o" "gcc" "src/apps/CMakeFiles/ceal_apps.dir/pdf_calc.cc.o.d"
  "/root/repo/src/apps/stage_write.cc" "src/apps/CMakeFiles/ceal_apps.dir/stage_write.cc.o" "gcc" "src/apps/CMakeFiles/ceal_apps.dir/stage_write.cc.o.d"
  "/root/repo/src/apps/stream.cc" "src/apps/CMakeFiles/ceal_apps.dir/stream.cc.o" "gcc" "src/apps/CMakeFiles/ceal_apps.dir/stream.cc.o.d"
  "/root/repo/src/apps/voronoi_lite.cc" "src/apps/CMakeFiles/ceal_apps.dir/voronoi_lite.cc.o" "gcc" "src/apps/CMakeFiles/ceal_apps.dir/voronoi_lite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ceal_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
