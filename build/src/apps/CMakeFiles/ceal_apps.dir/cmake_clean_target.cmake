file(REMOVE_RECURSE
  "libceal_apps.a"
)
