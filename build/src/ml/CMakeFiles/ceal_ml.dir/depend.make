# Empty dependencies file for ceal_ml.
# This may be replaced when dependencies are built.
