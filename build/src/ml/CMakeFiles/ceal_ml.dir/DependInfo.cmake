
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/ceal_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/ceal_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/gbt.cc" "src/ml/CMakeFiles/ceal_ml.dir/gbt.cc.o" "gcc" "src/ml/CMakeFiles/ceal_ml.dir/gbt.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/ceal_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/ceal_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/ceal_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/ceal_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/ceal_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/ceal_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/serialize.cc" "src/ml/CMakeFiles/ceal_ml.dir/serialize.cc.o" "gcc" "src/ml/CMakeFiles/ceal_ml.dir/serialize.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/ceal_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/ceal_ml.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ceal_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
