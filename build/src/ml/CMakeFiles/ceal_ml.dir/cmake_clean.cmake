file(REMOVE_RECURSE
  "CMakeFiles/ceal_ml.dir/dataset.cc.o"
  "CMakeFiles/ceal_ml.dir/dataset.cc.o.d"
  "CMakeFiles/ceal_ml.dir/gbt.cc.o"
  "CMakeFiles/ceal_ml.dir/gbt.cc.o.d"
  "CMakeFiles/ceal_ml.dir/knn.cc.o"
  "CMakeFiles/ceal_ml.dir/knn.cc.o.d"
  "CMakeFiles/ceal_ml.dir/metrics.cc.o"
  "CMakeFiles/ceal_ml.dir/metrics.cc.o.d"
  "CMakeFiles/ceal_ml.dir/random_forest.cc.o"
  "CMakeFiles/ceal_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/ceal_ml.dir/serialize.cc.o"
  "CMakeFiles/ceal_ml.dir/serialize.cc.o.d"
  "CMakeFiles/ceal_ml.dir/tree.cc.o"
  "CMakeFiles/ceal_ml.dir/tree.cc.o.d"
  "libceal_ml.a"
  "libceal_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
