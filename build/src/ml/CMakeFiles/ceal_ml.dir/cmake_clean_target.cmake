file(REMOVE_RECURSE
  "libceal_ml.a"
)
