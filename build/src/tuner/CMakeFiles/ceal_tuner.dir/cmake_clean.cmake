file(REMOVE_RECURSE
  "CMakeFiles/ceal_tuner.dir/active_learning.cc.o"
  "CMakeFiles/ceal_tuner.dir/active_learning.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/alph.cc.o"
  "CMakeFiles/ceal_tuner.dir/alph.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/bayes_opt.cc.o"
  "CMakeFiles/ceal_tuner.dir/bayes_opt.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/ceal.cc.o"
  "CMakeFiles/ceal_tuner.dir/ceal.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/collector.cc.o"
  "CMakeFiles/ceal_tuner.dir/collector.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/evaluation.cc.o"
  "CMakeFiles/ceal_tuner.dir/evaluation.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/geist.cc.o"
  "CMakeFiles/ceal_tuner.dir/geist.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/low_fidelity.cc.o"
  "CMakeFiles/ceal_tuner.dir/low_fidelity.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/measured_pool.cc.o"
  "CMakeFiles/ceal_tuner.dir/measured_pool.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/pool_io.cc.o"
  "CMakeFiles/ceal_tuner.dir/pool_io.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/random_search.cc.o"
  "CMakeFiles/ceal_tuner.dir/random_search.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/surrogate.cc.o"
  "CMakeFiles/ceal_tuner.dir/surrogate.cc.o.d"
  "CMakeFiles/ceal_tuner.dir/tuning_util.cc.o"
  "CMakeFiles/ceal_tuner.dir/tuning_util.cc.o.d"
  "libceal_tuner.a"
  "libceal_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
