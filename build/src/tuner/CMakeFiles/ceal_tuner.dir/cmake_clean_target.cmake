file(REMOVE_RECURSE
  "libceal_tuner.a"
)
