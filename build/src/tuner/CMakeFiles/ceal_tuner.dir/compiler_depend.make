# Empty compiler generated dependencies file for ceal_tuner.
# This may be replaced when dependencies are built.
