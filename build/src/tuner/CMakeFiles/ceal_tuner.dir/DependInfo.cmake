
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuner/active_learning.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/active_learning.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/active_learning.cc.o.d"
  "/root/repo/src/tuner/alph.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/alph.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/alph.cc.o.d"
  "/root/repo/src/tuner/bayes_opt.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/bayes_opt.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/bayes_opt.cc.o.d"
  "/root/repo/src/tuner/ceal.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/ceal.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/ceal.cc.o.d"
  "/root/repo/src/tuner/collector.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/collector.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/collector.cc.o.d"
  "/root/repo/src/tuner/evaluation.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/evaluation.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/evaluation.cc.o.d"
  "/root/repo/src/tuner/geist.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/geist.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/geist.cc.o.d"
  "/root/repo/src/tuner/low_fidelity.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/low_fidelity.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/low_fidelity.cc.o.d"
  "/root/repo/src/tuner/measured_pool.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/measured_pool.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/measured_pool.cc.o.d"
  "/root/repo/src/tuner/pool_io.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/pool_io.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/pool_io.cc.o.d"
  "/root/repo/src/tuner/random_search.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/random_search.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/random_search.cc.o.d"
  "/root/repo/src/tuner/surrogate.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/surrogate.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/surrogate.cc.o.d"
  "/root/repo/src/tuner/tuning_util.cc" "src/tuner/CMakeFiles/ceal_tuner.dir/tuning_util.cc.o" "gcc" "src/tuner/CMakeFiles/ceal_tuner.dir/tuning_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ceal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ceal_config.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ceal_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ceal_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
