
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/composite.cc" "src/config/CMakeFiles/ceal_config.dir/composite.cc.o" "gcc" "src/config/CMakeFiles/ceal_config.dir/composite.cc.o.d"
  "/root/repo/src/config/config_space.cc" "src/config/CMakeFiles/ceal_config.dir/config_space.cc.o" "gcc" "src/config/CMakeFiles/ceal_config.dir/config_space.cc.o.d"
  "/root/repo/src/config/parameter.cc" "src/config/CMakeFiles/ceal_config.dir/parameter.cc.o" "gcc" "src/config/CMakeFiles/ceal_config.dir/parameter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ceal_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
