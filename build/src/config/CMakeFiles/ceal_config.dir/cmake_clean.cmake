file(REMOVE_RECURSE
  "CMakeFiles/ceal_config.dir/composite.cc.o"
  "CMakeFiles/ceal_config.dir/composite.cc.o.d"
  "CMakeFiles/ceal_config.dir/config_space.cc.o"
  "CMakeFiles/ceal_config.dir/config_space.cc.o.d"
  "CMakeFiles/ceal_config.dir/parameter.cc.o"
  "CMakeFiles/ceal_config.dir/parameter.cc.o.d"
  "libceal_config.a"
  "libceal_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
