file(REMOVE_RECURSE
  "libceal_config.a"
)
