# Empty dependencies file for ceal_config.
# This may be replaced when dependencies are built.
