file(REMOVE_RECURSE
  "libceal_core.a"
)
