file(REMOVE_RECURSE
  "CMakeFiles/ceal_core.dir/csv.cc.o"
  "CMakeFiles/ceal_core.dir/csv.cc.o.d"
  "CMakeFiles/ceal_core.dir/rng.cc.o"
  "CMakeFiles/ceal_core.dir/rng.cc.o.d"
  "CMakeFiles/ceal_core.dir/stats.cc.o"
  "CMakeFiles/ceal_core.dir/stats.cc.o.d"
  "CMakeFiles/ceal_core.dir/table.cc.o"
  "CMakeFiles/ceal_core.dir/table.cc.o.d"
  "CMakeFiles/ceal_core.dir/thread_pool.cc.o"
  "CMakeFiles/ceal_core.dir/thread_pool.cc.o.d"
  "libceal_core.a"
  "libceal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
