# Empty dependencies file for ceal_core.
# This may be replaced when dependencies are built.
