
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/csv.cc" "src/core/CMakeFiles/ceal_core.dir/csv.cc.o" "gcc" "src/core/CMakeFiles/ceal_core.dir/csv.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/core/CMakeFiles/ceal_core.dir/rng.cc.o" "gcc" "src/core/CMakeFiles/ceal_core.dir/rng.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/ceal_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/ceal_core.dir/stats.cc.o.d"
  "/root/repo/src/core/table.cc" "src/core/CMakeFiles/ceal_core.dir/table.cc.o" "gcc" "src/core/CMakeFiles/ceal_core.dir/table.cc.o.d"
  "/root/repo/src/core/thread_pool.cc" "src/core/CMakeFiles/ceal_core.dir/thread_pool.cc.o" "gcc" "src/core/CMakeFiles/ceal_core.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
