file(REMOVE_RECURSE
  "CMakeFiles/ceal_pool.dir/ceal_pool.cc.o"
  "CMakeFiles/ceal_pool.dir/ceal_pool.cc.o.d"
  "ceal_pool"
  "ceal_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
