# Empty compiler generated dependencies file for ceal_pool.
# This may be replaced when dependencies are built.
