# Empty dependencies file for ceal_tune.
# This may be replaced when dependencies are built.
