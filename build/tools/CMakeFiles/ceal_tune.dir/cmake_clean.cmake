file(REMOVE_RECURSE
  "CMakeFiles/ceal_tune.dir/ceal_tune.cc.o"
  "CMakeFiles/ceal_tune.dir/ceal_tune.cc.o.d"
  "ceal_tune"
  "ceal_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
