file(REMOVE_RECURSE
  "CMakeFiles/ceal_explain.dir/ceal_explain.cc.o"
  "CMakeFiles/ceal_explain.dir/ceal_explain.cc.o.d"
  "ceal_explain"
  "ceal_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
