# Empty dependencies file for ceal_explain.
# This may be replaced when dependencies are built.
