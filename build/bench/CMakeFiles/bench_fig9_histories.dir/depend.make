# Empty dependencies file for bench_fig9_histories.
# This may be replaced when dependencies are built.
