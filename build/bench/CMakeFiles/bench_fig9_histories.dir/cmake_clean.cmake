file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_histories.dir/bench_fig9_histories.cc.o"
  "CMakeFiles/bench_fig9_histories.dir/bench_fig9_histories.cc.o.d"
  "bench_fig9_histories"
  "bench_fig9_histories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_histories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
