file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_autotune_no_hist.dir/bench_fig5_autotune_no_hist.cc.o"
  "CMakeFiles/bench_fig5_autotune_no_hist.dir/bench_fig5_autotune_no_hist.cc.o.d"
  "bench_fig5_autotune_no_hist"
  "bench_fig5_autotune_no_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_autotune_no_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
