# Empty compiler generated dependencies file for bench_fig5_autotune_no_hist.
# This may be replaced when dependencies are built.
