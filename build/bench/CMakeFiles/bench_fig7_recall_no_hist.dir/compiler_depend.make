# Empty compiler generated dependencies file for bench_fig7_recall_no_hist.
# This may be replaced when dependencies are built.
