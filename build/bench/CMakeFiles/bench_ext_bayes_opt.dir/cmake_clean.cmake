file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bayes_opt.dir/bench_ext_bayes_opt.cc.o"
  "CMakeFiles/bench_ext_bayes_opt.dir/bench_ext_bayes_opt.cc.o.d"
  "bench_ext_bayes_opt"
  "bench_ext_bayes_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bayes_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
