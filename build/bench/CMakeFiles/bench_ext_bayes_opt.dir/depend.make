# Empty dependencies file for bench_ext_bayes_opt.
# This may be replaced when dependencies are built.
