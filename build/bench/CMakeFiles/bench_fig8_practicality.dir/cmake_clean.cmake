file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_practicality.dir/bench_fig8_practicality.cc.o"
  "CMakeFiles/bench_fig8_practicality.dir/bench_fig8_practicality.cc.o.d"
  "bench_fig8_practicality"
  "bench_fig8_practicality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_practicality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
