file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_spaces.dir/bench_table1_spaces.cc.o"
  "CMakeFiles/bench_table1_spaces.dir/bench_table1_spaces.cc.o.d"
  "bench_table1_spaces"
  "bench_table1_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
