# Empty dependencies file for bench_table1_spaces.
# This may be replaced when dependencies are built.
