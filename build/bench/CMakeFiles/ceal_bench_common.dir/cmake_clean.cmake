file(REMOVE_RECURSE
  "CMakeFiles/ceal_bench_common.dir/common.cc.o"
  "CMakeFiles/ceal_bench_common.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceal_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
