# Empty compiler generated dependencies file for ceal_bench_common.
# This may be replaced when dependencies are built.
