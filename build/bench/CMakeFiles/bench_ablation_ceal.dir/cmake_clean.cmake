file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ceal.dir/bench_ablation_ceal.cc.o"
  "CMakeFiles/bench_ablation_ceal.dir/bench_ablation_ceal.cc.o.d"
  "bench_ablation_ceal"
  "bench_ablation_ceal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ceal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
