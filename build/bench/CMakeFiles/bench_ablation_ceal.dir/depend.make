# Empty dependencies file for bench_ablation_ceal.
# This may be replaced when dependencies are built.
