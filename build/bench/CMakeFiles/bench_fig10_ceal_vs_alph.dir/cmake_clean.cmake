file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ceal_vs_alph.dir/bench_fig10_ceal_vs_alph.cc.o"
  "CMakeFiles/bench_fig10_ceal_vs_alph.dir/bench_fig10_ceal_vs_alph.cc.o.d"
  "bench_fig10_ceal_vs_alph"
  "bench_fig10_ceal_vs_alph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ceal_vs_alph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
