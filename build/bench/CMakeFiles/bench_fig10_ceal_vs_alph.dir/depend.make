# Empty dependencies file for bench_fig10_ceal_vs_alph.
# This may be replaced when dependencies are built.
