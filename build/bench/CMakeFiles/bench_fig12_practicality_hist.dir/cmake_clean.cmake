file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_practicality_hist.dir/bench_fig12_practicality_hist.cc.o"
  "CMakeFiles/bench_fig12_practicality_hist.dir/bench_fig12_practicality_hist.cc.o.d"
  "bench_fig12_practicality_hist"
  "bench_fig12_practicality_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_practicality_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
