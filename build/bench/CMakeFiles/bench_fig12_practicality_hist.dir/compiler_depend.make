# Empty compiler generated dependencies file for bench_fig12_practicality_hist.
# This may be replaced when dependencies are built.
