file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_sensitivity.dir/bench_fig13_sensitivity.cc.o"
  "CMakeFiles/bench_fig13_sensitivity.dir/bench_fig13_sensitivity.cc.o.d"
  "bench_fig13_sensitivity"
  "bench_fig13_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
