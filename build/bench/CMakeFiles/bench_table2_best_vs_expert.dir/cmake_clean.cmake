file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_best_vs_expert.dir/bench_table2_best_vs_expert.cc.o"
  "CMakeFiles/bench_table2_best_vs_expert.dir/bench_table2_best_vs_expert.cc.o.d"
  "bench_table2_best_vs_expert"
  "bench_table2_best_vs_expert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_best_vs_expert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
