# Empty compiler generated dependencies file for bench_table2_best_vs_expert.
# This may be replaced when dependencies are built.
