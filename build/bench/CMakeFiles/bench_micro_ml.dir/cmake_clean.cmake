file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ml.dir/bench_micro_ml.cc.o"
  "CMakeFiles/bench_micro_ml.dir/bench_micro_ml.cc.o.d"
  "bench_micro_ml"
  "bench_micro_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
