# Empty dependencies file for bench_micro_ml.
# This may be replaced when dependencies are built.
