# Empty dependencies file for bench_fig6_mdape.
# This may be replaced when dependencies are built.
