file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_mdape.dir/bench_fig6_mdape.cc.o"
  "CMakeFiles/bench_fig6_mdape.dir/bench_fig6_mdape.cc.o.d"
  "bench_fig6_mdape"
  "bench_fig6_mdape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_mdape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
