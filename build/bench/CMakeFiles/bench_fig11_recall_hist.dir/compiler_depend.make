# Empty compiler generated dependencies file for bench_fig11_recall_hist.
# This may be replaced when dependencies are built.
