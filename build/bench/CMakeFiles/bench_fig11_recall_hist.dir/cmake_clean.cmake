file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_recall_hist.dir/bench_fig11_recall_hist.cc.o"
  "CMakeFiles/bench_fig11_recall_hist.dir/bench_fig11_recall_hist.cc.o.d"
  "bench_fig11_recall_hist"
  "bench_fig11_recall_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_recall_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
