# Empty compiler generated dependencies file for bench_fig4_combination_recall.
# This may be replaced when dependencies are built.
