# Empty dependencies file for bench_ablation_models.
# This may be replaced when dependencies are built.
