file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_models.dir/bench_ablation_models.cc.o"
  "CMakeFiles/bench_ablation_models.dir/bench_ablation_models.cc.o.d"
  "bench_ablation_models"
  "bench_ablation_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
