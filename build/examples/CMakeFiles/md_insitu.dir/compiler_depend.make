# Empty compiler generated dependencies file for md_insitu.
# This may be replaced when dependencies are built.
