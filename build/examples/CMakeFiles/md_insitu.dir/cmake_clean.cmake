file(REMOVE_RECURSE
  "CMakeFiles/md_insitu.dir/md_insitu.cpp.o"
  "CMakeFiles/md_insitu.dir/md_insitu.cpp.o.d"
  "md_insitu"
  "md_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
