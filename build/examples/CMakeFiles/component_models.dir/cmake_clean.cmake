file(REMOVE_RECURSE
  "CMakeFiles/component_models.dir/component_models.cpp.o"
  "CMakeFiles/component_models.dir/component_models.cpp.o.d"
  "component_models"
  "component_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/component_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
