# Empty compiler generated dependencies file for component_models.
# This may be replaced when dependencies are built.
