# Empty dependencies file for lv_autotune.
# This may be replaced when dependencies are built.
