file(REMOVE_RECURSE
  "CMakeFiles/lv_autotune.dir/lv_autotune.cpp.o"
  "CMakeFiles/lv_autotune.dir/lv_autotune.cpp.o.d"
  "lv_autotune"
  "lv_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
