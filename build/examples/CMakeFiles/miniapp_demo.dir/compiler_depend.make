# Empty compiler generated dependencies file for miniapp_demo.
# This may be replaced when dependencies are built.
