file(REMOVE_RECURSE
  "CMakeFiles/miniapp_demo.dir/miniapp_demo.cpp.o"
  "CMakeFiles/miniapp_demo.dir/miniapp_demo.cpp.o.d"
  "miniapp_demo"
  "miniapp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniapp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
