
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_workflow.cpp" "examples/CMakeFiles/custom_workflow.dir/custom_workflow.cpp.o" "gcc" "examples/CMakeFiles/custom_workflow.dir/custom_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuner/CMakeFiles/ceal_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ceal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ceal_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ceal_config.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ceal_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ceal_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
