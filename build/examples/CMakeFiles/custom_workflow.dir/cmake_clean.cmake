file(REMOVE_RECURSE
  "CMakeFiles/custom_workflow.dir/custom_workflow.cpp.o"
  "CMakeFiles/custom_workflow.dir/custom_workflow.cpp.o.d"
  "custom_workflow"
  "custom_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
