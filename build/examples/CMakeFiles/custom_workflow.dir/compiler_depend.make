# Empty compiler generated dependencies file for custom_workflow.
# This may be replaced when dependencies are built.
