# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/unit_tests[1]_include.cmake")
include("/root/repo/build/tests/system_tests[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;65;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_component_models "/root/repo/build/examples/component_models")
set_tests_properties(example_component_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;66;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_miniapp_demo "/root/repo/build/examples/miniapp_demo")
set_tests_properties(example_miniapp_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;67;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_custom_workflow "/root/repo/build/examples/custom_workflow")
set_tests_properties(example_custom_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;68;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_md_insitu "/root/repo/build/examples/md_insitu")
set_tests_properties(example_md_insitu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;69;add_test;/root/repo/tests/CMakeLists.txt;0;")
