
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/test_gray_scott.cc" "tests/CMakeFiles/unit_tests.dir/apps/test_gray_scott.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/apps/test_gray_scott.cc.o.d"
  "/root/repo/tests/apps/test_heat_transfer.cc" "tests/CMakeFiles/unit_tests.dir/apps/test_heat_transfer.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/apps/test_heat_transfer.cc.o.d"
  "/root/repo/tests/apps/test_md_lite.cc" "tests/CMakeFiles/unit_tests.dir/apps/test_md_lite.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/apps/test_md_lite.cc.o.d"
  "/root/repo/tests/apps/test_pdf_calc.cc" "tests/CMakeFiles/unit_tests.dir/apps/test_pdf_calc.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/apps/test_pdf_calc.cc.o.d"
  "/root/repo/tests/apps/test_stage_write.cc" "tests/CMakeFiles/unit_tests.dir/apps/test_stage_write.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/apps/test_stage_write.cc.o.d"
  "/root/repo/tests/apps/test_stream.cc" "tests/CMakeFiles/unit_tests.dir/apps/test_stream.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/apps/test_stream.cc.o.d"
  "/root/repo/tests/apps/test_voronoi_lite.cc" "tests/CMakeFiles/unit_tests.dir/apps/test_voronoi_lite.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/apps/test_voronoi_lite.cc.o.d"
  "/root/repo/tests/config/test_composite.cc" "tests/CMakeFiles/unit_tests.dir/config/test_composite.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/config/test_composite.cc.o.d"
  "/root/repo/tests/config/test_config_space.cc" "tests/CMakeFiles/unit_tests.dir/config/test_config_space.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/config/test_config_space.cc.o.d"
  "/root/repo/tests/config/test_parameter.cc" "tests/CMakeFiles/unit_tests.dir/config/test_parameter.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/config/test_parameter.cc.o.d"
  "/root/repo/tests/config/test_space_properties.cc" "tests/CMakeFiles/unit_tests.dir/config/test_space_properties.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/config/test_space_properties.cc.o.d"
  "/root/repo/tests/core/test_csv.cc" "tests/CMakeFiles/unit_tests.dir/core/test_csv.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_csv.cc.o.d"
  "/root/repo/tests/core/test_error.cc" "tests/CMakeFiles/unit_tests.dir/core/test_error.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_error.cc.o.d"
  "/root/repo/tests/core/test_rng.cc" "tests/CMakeFiles/unit_tests.dir/core/test_rng.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_rng.cc.o.d"
  "/root/repo/tests/core/test_stats.cc" "tests/CMakeFiles/unit_tests.dir/core/test_stats.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_stats.cc.o.d"
  "/root/repo/tests/core/test_table.cc" "tests/CMakeFiles/unit_tests.dir/core/test_table.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_table.cc.o.d"
  "/root/repo/tests/core/test_thread_pool.cc" "tests/CMakeFiles/unit_tests.dir/core/test_thread_pool.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_thread_pool.cc.o.d"
  "/root/repo/tests/ml/test_dataset.cc" "tests/CMakeFiles/unit_tests.dir/ml/test_dataset.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/ml/test_dataset.cc.o.d"
  "/root/repo/tests/ml/test_gbt.cc" "tests/CMakeFiles/unit_tests.dir/ml/test_gbt.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/ml/test_gbt.cc.o.d"
  "/root/repo/tests/ml/test_gbt_properties.cc" "tests/CMakeFiles/unit_tests.dir/ml/test_gbt_properties.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/ml/test_gbt_properties.cc.o.d"
  "/root/repo/tests/ml/test_knn.cc" "tests/CMakeFiles/unit_tests.dir/ml/test_knn.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/ml/test_knn.cc.o.d"
  "/root/repo/tests/ml/test_metrics.cc" "tests/CMakeFiles/unit_tests.dir/ml/test_metrics.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/ml/test_metrics.cc.o.d"
  "/root/repo/tests/ml/test_random_forest.cc" "tests/CMakeFiles/unit_tests.dir/ml/test_random_forest.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/ml/test_random_forest.cc.o.d"
  "/root/repo/tests/ml/test_serialize.cc" "tests/CMakeFiles/unit_tests.dir/ml/test_serialize.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/ml/test_serialize.cc.o.d"
  "/root/repo/tests/ml/test_tree.cc" "tests/CMakeFiles/unit_tests.dir/ml/test_tree.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/ml/test_tree.cc.o.d"
  "/root/repo/tests/tools/test_args.cc" "tests/CMakeFiles/unit_tests.dir/tools/test_args.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/tools/test_args.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ceal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ceal_config.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ceal_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ceal_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
