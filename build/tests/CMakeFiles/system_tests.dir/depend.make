# Empty dependencies file for system_tests.
# This may be replaced when dependencies are built.
