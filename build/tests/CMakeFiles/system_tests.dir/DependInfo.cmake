
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_end_to_end.cc" "tests/CMakeFiles/system_tests.dir/integration/test_end_to_end.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/integration/test_end_to_end.cc.o.d"
  "/root/repo/tests/sim/test_component_app.cc" "tests/CMakeFiles/system_tests.dir/sim/test_component_app.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/sim/test_component_app.cc.o.d"
  "/root/repo/tests/sim/test_explain.cc" "tests/CMakeFiles/system_tests.dir/sim/test_explain.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/sim/test_explain.cc.o.d"
  "/root/repo/tests/sim/test_scaling.cc" "tests/CMakeFiles/system_tests.dir/sim/test_scaling.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/sim/test_scaling.cc.o.d"
  "/root/repo/tests/sim/test_workflow.cc" "tests/CMakeFiles/system_tests.dir/sim/test_workflow.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/sim/test_workflow.cc.o.d"
  "/root/repo/tests/sim/test_workflow_properties.cc" "tests/CMakeFiles/system_tests.dir/sim/test_workflow_properties.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/sim/test_workflow_properties.cc.o.d"
  "/root/repo/tests/sim/test_workloads.cc" "tests/CMakeFiles/system_tests.dir/sim/test_workloads.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/sim/test_workloads.cc.o.d"
  "/root/repo/tests/tuner/test_algorithms.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_algorithms.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_algorithms.cc.o.d"
  "/root/repo/tests/tuner/test_bayes_opt.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_bayes_opt.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_bayes_opt.cc.o.d"
  "/root/repo/tests/tuner/test_ceal.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_ceal.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_ceal.cc.o.d"
  "/root/repo/tests/tuner/test_collector.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_collector.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_collector.cc.o.d"
  "/root/repo/tests/tuner/test_evaluation.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_evaluation.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_evaluation.cc.o.d"
  "/root/repo/tests/tuner/test_geist_graph.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_geist_graph.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_geist_graph.cc.o.d"
  "/root/repo/tests/tuner/test_low_fidelity.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_low_fidelity.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_low_fidelity.cc.o.d"
  "/root/repo/tests/tuner/test_measured_pool.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_measured_pool.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_measured_pool.cc.o.d"
  "/root/repo/tests/tuner/test_objective.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_objective.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_objective.cc.o.d"
  "/root/repo/tests/tuner/test_pool_io.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_pool_io.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_pool_io.cc.o.d"
  "/root/repo/tests/tuner/test_surrogate.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_surrogate.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_surrogate.cc.o.d"
  "/root/repo/tests/tuner/test_tuning_util.cc" "tests/CMakeFiles/system_tests.dir/tuner/test_tuning_util.cc.o" "gcc" "tests/CMakeFiles/system_tests.dir/tuner/test_tuning_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ceal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ceal_config.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ceal_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ceal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/ceal_tuner.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
